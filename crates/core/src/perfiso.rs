//! Performance isolation: the noisy-neighbor experiment.
//!
//! The paper motivates MTS partly with *performance* isolation failures of
//! the shared vswitch — Csikor et al.'s cross-tenant denial-of-service
//! ("Policy injection: a cloud dataplane DoS attack", the paper's ref. 15)
//! shows
//! one tenant degrading everyone through the shared datapath. This module
//! quantifies the effect: a victim tenant is probed at low rate while an
//! attacker tenant floods, and the victim's latency/loss is compared to its
//! quiet baseline.
//!
//! Expected shape: with the Baseline's single shared datapath the victim's
//! latency explodes and it loses packets; with MTS Level-2 in the isolated
//! mode the victim's vswitch compartment has its own core and the NIC
//! schedules its VFs independently, so the victim barely notices.
//!
//! Two granularities are provided: [`noisy_neighbor`] (one victim, the
//! original experiment) and [`noisy_matrix`] (tenant 0 floods, *every*
//! other tenant is probed — one [`SloCell`] per victim with p50/p99/p999,
//! loss, and the victim's meter-attributed vswitch cycles). The matrix is
//! what the `repro slo` panel prints per security level.

use crate::controller::{Controller, DeployError};
use crate::runtime::{start_udp_generator, RuntimeCfg, Sim, World};
use crate::spec::DeploymentSpec;
#[cfg(test)]
use crate::spec::SecurityLevel;
use mts_net::MacAddr;
use mts_sim::{Dur, Summary, Time};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Result of one noisy-neighbor comparison.
#[derive(Clone, Debug, Serialize, Deserialize, Default)]
pub struct NoisyNeighborResult {
    /// Configuration label.
    pub config: String,
    /// Victim latency with no attacker (ns).
    pub victim_quiet: Summary,
    /// Victim latency while the attacker floods (ns).
    pub victim_noisy: Summary,
    /// Victim loss fraction while the attacker floods.
    pub victim_loss: f64,
    /// Attacker throughput achieved during the flood (packets/second).
    pub attacker_pps: f64,
}

/// Ratio of noisy over quiet, 0 when the quiet side is empty.
fn amp(quiet: u64, noisy: u64) -> f64 {
    if quiet == 0 {
        0.0
    } else {
        noisy as f64 / quiet as f64
    }
}

impl NoisyNeighborResult {
    /// Median latency amplification factor (noisy p50 over quiet p50).
    pub fn amplification(&self) -> f64 {
        amp(self.victim_quiet.p50, self.victim_noisy.p50)
    }

    /// Tail amplification at the 99th percentile.
    pub fn p99_amplification(&self) -> f64 {
        amp(self.victim_quiet.p99, self.victim_noisy.p99)
    }

    /// Tail amplification at the 99.9th percentile — the SLO panels' tail.
    pub fn p999_amplification(&self) -> f64 {
        amp(self.victim_quiet.p999, self.victim_noisy.p999)
    }
}

/// Options for the experiment.
#[derive(Clone, Copy, Debug)]
pub struct NoisyOpts {
    /// Victim probe rate (packets/second).
    pub victim_pps: f64,
    /// Attacker flood rate (packets/second).
    pub attacker_pps: f64,
    /// Warm-up before measuring.
    pub warmup: Dur,
    /// Measurement window.
    pub measure: Dur,
    /// Seed.
    pub seed: u64,
}

impl Default for NoisyOpts {
    fn default() -> Self {
        NoisyOpts {
            victim_pps: 10_000.0,
            attacker_pps: 14_000_000.0,
            warmup: Dur::millis(12),
            measure: Dur::millis(10),
            seed: 1,
        }
    }
}

/// Runs the experiment: attacker is tenant 0, victim is tenant 1.
///
/// For a meaningful Level-2 comparison the two tenants must live in
/// different compartments, which holds for the default modulo placement.
pub fn noisy_neighbor(
    spec: DeploymentSpec,
    opts: NoisyOpts,
) -> Result<NoisyNeighborResult, DeployError> {
    let quiet = run_phase(spec, opts, false)?;
    let noisy = run_phase(spec, opts, true)?;
    Ok(NoisyNeighborResult {
        config: spec.label(),
        victim_quiet: quiet.0,
        victim_noisy: noisy.0,
        victim_loss: noisy.1,
        attacker_pps: noisy.2,
    })
}

fn flow_dmac(w: &World, tenant: u8) -> MacAddr {
    if w.spec.level.compartmentalized() {
        let c = w.spec.compartment_of_tenant(tenant) as usize;
        w.plan.compartments[c].in_out[0].1
    } else {
        Controller::baseline_router_mac(0)
    }
}

/// Runs one phase; returns (victim latency, victim loss, attacker pps).
fn run_phase(
    spec: DeploymentSpec,
    opts: NoisyOpts,
    with_attacker: bool,
) -> Result<(Summary, f64, f64), DeployError> {
    let d = Controller::deploy(spec)?;
    let mut cfg = RuntimeCfg::for_spec(&spec);
    cfg.offered_pps = if with_attacker {
        opts.attacker_pps
    } else {
        opts.victim_pps
    };
    let mut w = World::new(d, cfg, opts.seed);
    let mut e = Sim::new();
    let start = Time::ZERO + opts.warmup;
    let end = start + opts.measure;
    w.sink.window = (start, end);

    let victim: Vec<(MacAddr, Ipv4Addr)> = vec![(flow_dmac(&w, 1), w.plan.tenants[1].ip)];
    start_udp_generator(&mut e, victim, opts.victim_pps, 64, end);
    if with_attacker {
        let attacker: Vec<(MacAddr, Ipv4Addr)> = vec![(flow_dmac(&w, 0), w.plan.tenants[0].ip)];
        start_udp_generator(&mut e, attacker, opts.attacker_pps, 64, end);
    }
    e.run_until(&mut w, end + Dur::millis(30));
    e.clear();

    let victim_lat = w.sink.latency_by_flow[1].summary();
    let victim_recv = w.sink.per_flow[1];
    let victim_sent = (opts.victim_pps * opts.measure.as_secs_f64()) as u64;
    let loss = 1.0 - (victim_recv as f64 / victim_sent.max(1) as f64).min(1.0);
    let attacker_pps = w.sink.per_flow[0] as f64 / opts.measure.as_secs_f64();
    Ok((victim_lat, loss, attacker_pps))
}

/// One victim's row in the noisy-neighbor SLO matrix.
#[derive(Clone, Debug, Serialize, Deserialize, Default)]
pub struct SloCell {
    /// Configuration label.
    pub config: String,
    /// Victim tenant index (the attacker, tenant 0, has no cell).
    pub tenant: u8,
    /// Victim latency with no attacker (ns).
    pub quiet: Summary,
    /// Victim latency while tenant 0 floods (ns).
    pub noisy: Summary,
    /// Victim loss fraction while tenant 0 floods.
    pub loss: f64,
    /// Attacker throughput achieved during the flood (packets/second).
    pub attacker_pps: f64,
    /// vswitch cycles the meters attributed to this victim during the
    /// noisy phase (ground truth; what an exact biller would charge).
    pub attributed_cycles: Dur,
    /// Attribution regime of the victim's vswitch ("exact",
    /// "proportional" or "unattributed").
    pub attribution: String,
}

impl SloCell {
    /// Median latency amplification factor.
    pub fn amplification(&self) -> f64 {
        amp(self.quiet.p50, self.noisy.p50)
    }

    /// Tail amplification at the 99th percentile.
    pub fn p99_amplification(&self) -> f64 {
        amp(self.quiet.p99, self.noisy.p99)
    }

    /// Tail amplification at the 99.9th percentile.
    pub fn p999_amplification(&self) -> f64 {
        amp(self.quiet.p999, self.noisy.p999)
    }
}

/// Runs the noisy-neighbor matrix: tenant 0 floods, every other tenant is
/// probed at the victim rate, quiet vs noisy, one [`SloCell`] per victim.
///
/// Unlike [`noisy_neighbor`] the probes run concurrently, so the matrix
/// also captures victims degrading *each other* (they do not, unless the
/// deployment shares a datapath or a core — which is the point).
pub fn noisy_matrix(spec: DeploymentSpec, opts: NoisyOpts) -> Result<Vec<SloCell>, DeployError> {
    let quiet = run_matrix_phase(spec, opts, false)?;
    let noisy = run_matrix_phase(spec, opts, true)?;
    let cells = quiet
        .cells
        .into_iter()
        .zip(noisy.cells)
        .map(|(q, n)| SloCell {
            config: spec.label(),
            tenant: q.tenant,
            quiet: q.latency,
            noisy: n.latency,
            loss: n.loss,
            attacker_pps: noisy.attacker_pps,
            attributed_cycles: n.attributed_cycles,
            attribution: n.attribution.to_string(),
        })
        .collect();
    Ok(cells)
}

/// Per-victim raw numbers from one matrix phase.
struct PhaseCell {
    tenant: u8,
    latency: Summary,
    loss: f64,
    attributed_cycles: Dur,
    attribution: &'static str,
}

/// All victims' numbers from one matrix phase.
struct PhaseResult {
    cells: Vec<PhaseCell>,
    attacker_pps: f64,
}

/// Runs one matrix phase: all victims probe; the attacker optionally floods.
fn run_matrix_phase(
    spec: DeploymentSpec,
    opts: NoisyOpts,
    with_attacker: bool,
) -> Result<PhaseResult, DeployError> {
    let d = Controller::deploy(spec)?;
    let mut cfg = RuntimeCfg::for_spec(&spec);
    cfg.offered_pps = if with_attacker {
        opts.attacker_pps
    } else {
        opts.victim_pps
    };
    let mut w = World::new(d, cfg, opts.seed);
    let mut e = Sim::new();
    let start = Time::ZERO + opts.warmup;
    let end = start + opts.measure;
    w.sink.window = (start, end);

    for t in 1..spec.tenants {
        let flow: Vec<(MacAddr, Ipv4Addr)> =
            vec![(flow_dmac(&w, t), w.plan.tenants[t as usize].ip)];
        start_udp_generator(&mut e, flow, opts.victim_pps, 64, end);
    }
    if with_attacker {
        let attacker: Vec<(MacAddr, Ipv4Addr)> = vec![(flow_dmac(&w, 0), w.plan.tenants[0].ip)];
        start_udp_generator(&mut e, attacker, opts.attacker_pps, 64, end);
    }
    e.run_until(&mut w, end + Dur::millis(30));
    e.clear();

    let mut cells = Vec::new();
    for t in 1..spec.tenants {
        let idx = t as usize;
        let sent = w.sink.sent_by_flow.get(idx).copied().unwrap_or(0);
        let recv = w.sink.per_flow.get(idx).copied().unwrap_or(0);
        let loss = 1.0 - (recv as f64 / sent.max(1) as f64).min(1.0);
        let vswitch = if spec.level.compartmentalized() {
            spec.compartment_of_tenant(t) as usize
        } else {
            0
        };
        cells.push(PhaseCell {
            tenant: t,
            latency: w.sink.latency_by_flow[idx].summary(),
            loss,
            attributed_cycles: w.meters.tenant_vswitch_truth(idx),
            attribution: w.meters.vswitch_attribution(vswitch).label(),
        });
    }
    let attacker_pps = if with_attacker {
        w.sink.per_flow.first().copied().unwrap_or(0) as f64 / opts.measure.as_secs_f64()
    } else {
        0.0
    };
    Ok(PhaseResult {
        cells,
        attacker_pps,
    })
}

/// Renders the SLO matrix as a human-readable table.
pub fn render_matrix(cells: &[SloCell]) -> String {
    let mut out =
        String::from("== SLO matrix: tenant 0 floods, every other tenant's latency tail ==\n");
    out.push_str(&format!(
        "{:<26} {:>6} {:>10} {:>10} {:>10} {:>8} {:>14} {:>13}\n",
        "config", "victim", "p50 us", "p99 us", "p999 us", "loss %", "cycles", "attribution"
    ));
    for c in cells {
        out.push_str(&format!(
            "{:<26} {:>6} {:>10.1} {:>10.1} {:>10.1} {:>8.2} {:>14} {:>13}\n",
            c.config,
            c.tenant,
            c.noisy.p50 as f64 / 1e3,
            c.noisy.p99 as f64 / 1e3,
            c.noisy.p999 as f64 / 1e3,
            c.loss * 100.0,
            format!("{}", c.attributed_cycles),
            c.attribution
        ));
    }
    out
}

/// Renders a comparison table across configurations.
pub fn render(results: &[NoisyNeighborResult]) -> String {
    let mut out = String::from("== Noisy neighbor: victim p50 latency, quiet vs under attack ==\n");
    out.push_str(&format!(
        "{:<26} {:>12} {:>12} {:>8} {:>10}\n",
        "config", "quiet us", "noisy us", "amp", "loss %"
    ));
    for r in results {
        out.push_str(&format!(
            "{:<26} {:>12.1} {:>12.1} {:>7.1}x {:>9.2}\n",
            r.config,
            r.victim_quiet.p50 as f64 / 1e3,
            r.victim_noisy.p50 as f64 / 1e3,
            r.amplification(),
            r.victim_loss * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Scenario;
    use mts_host::ResourceMode;
    use mts_vswitch::DatapathKind;

    fn opts() -> NoisyOpts {
        NoisyOpts {
            victim_pps: 10_000.0,
            attacker_pps: 2_000_000.0,
            warmup: Dur::millis(12),
            measure: Dur::millis(6),
            seed: 2,
        }
    }

    #[test]
    fn baseline_victim_suffers_under_attack() {
        let spec =
            DeploymentSpec::baseline(DatapathKind::Kernel, ResourceMode::Shared, 1, Scenario::P2v);
        let r = noisy_neighbor(spec, opts()).unwrap();
        assert!(
            r.amplification() > 5.0,
            "baseline victim should suffer: {}x (quiet {} noisy {})",
            r.amplification(),
            r.victim_quiet.p50,
            r.victim_noisy.p50
        );
        assert!(
            r.victim_loss > 0.2,
            "baseline victim loss {}",
            r.victim_loss
        );
    }

    #[test]
    fn level2_isolated_protects_the_victim() {
        let spec = DeploymentSpec::mts(
            SecurityLevel::Level2 { compartments: 2 },
            DatapathKind::Kernel,
            ResourceMode::Isolated,
            Scenario::P2v,
        );
        let r = noisy_neighbor(spec, opts()).unwrap();
        assert!(
            r.amplification() < 3.0,
            "L2-isolated victim should be protected: {}x",
            r.amplification()
        );
        assert!(r.victim_loss < 0.05, "victim loss {}", r.victim_loss);
    }

    #[test]
    fn level2_shared_core_is_the_middle_ground() {
        // Sharing the core means the victim's *latency* jitters, but its
        // packets still flow (the vswitch compartments are separate).
        let spec = DeploymentSpec::mts(
            SecurityLevel::Level2 { compartments: 2 },
            DatapathKind::Kernel,
            ResourceMode::Shared,
            Scenario::P2v,
        );
        let r = noisy_neighbor(spec, opts()).unwrap();
        assert!(
            r.victim_loss < 0.6,
            "shared-core victim loss {}",
            r.victim_loss
        );
    }

    #[test]
    fn matrix_probes_every_victim_and_flags_attribution() {
        let spec = DeploymentSpec::mts(
            SecurityLevel::Level2 { compartments: 4 },
            DatapathKind::Kernel,
            ResourceMode::Isolated,
            Scenario::P2v,
        );
        let cells = noisy_matrix(spec, opts()).unwrap();
        assert_eq!(cells.len(), spec.tenants as usize - 1);
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.tenant as usize, i + 1);
            assert!(c.quiet.count > 0, "victim {} never probed quiet", c.tenant);
            assert!(c.noisy.count > 0, "victim {} never probed noisy", c.tenant);
            assert_eq!(c.attribution, "exact");
            assert!(c.attributed_cycles > Dur::ZERO);
            assert!(c.loss < 0.05, "victim {} loss {}", c.tenant, c.loss);
            assert!(c.noisy.p999 >= c.noisy.p99);
            assert!(c.noisy.p99 >= c.noisy.p50);
        }
    }

    #[test]
    fn matrix_baseline_is_unattributed_and_suffers() {
        let spec =
            DeploymentSpec::baseline(DatapathKind::Kernel, ResourceMode::Shared, 1, Scenario::P2v);
        let cells = noisy_matrix(spec, opts()).unwrap();
        assert!(!cells.is_empty());
        for c in &cells {
            assert_eq!(c.attribution, "unattributed");
            assert!(
                c.p999_amplification() >= c.amplification() * 0.5,
                "tail should be at least commensurate with the median"
            );
        }
        // The shared datapath makes at least one victim lose packets.
        assert!(cells.iter().any(|c| c.loss > 0.2));
        let table = render_matrix(&cells);
        assert!(table.contains("SLO matrix"));
        assert!(table.contains("unattributed"));
    }

    #[test]
    fn render_lists_all_rows() {
        let rows = vec![NoisyNeighborResult {
            config: "x".into(),
            ..NoisyNeighborResult::default()
        }];
        let t = render(&rows);
        assert!(t.contains("Noisy neighbor"));
        assert!(t.contains('x'));
    }
}
