//! Structured trace events and their exporters.
//!
//! Events carry simulated timestamps ([`mts_sim::Time`]) and optional
//! durations ([`mts_sim::Dur`]). Two export formats:
//!
//! - **Chrome trace-event JSON** ([`TraceLog::to_chrome_trace`]) — load
//!   the file in [Perfetto](https://ui.perfetto.dev) or
//!   `chrome://tracing`. Events with a duration render as slices
//!   (`"ph":"X"`), instantaneous ones as instants (`"ph":"i"`). The
//!   `pid` groups a component (NIC, vswitch N, tenant N) and `tid` a
//!   subunit within it, so each vswitch gets its own timeline row.
//! - **JSONL** ([`TraceLog::to_jsonl`]) — one self-describing JSON
//!   object per line for ad-hoc `jq`/pandas processing.
//!
//! Both renderings are byte-for-byte deterministic for a given log.

use mts_sim::{Dur, Time};

use crate::json::escape_json;

/// An argument value attached to a trace event.
#[derive(Clone, PartialEq, Debug)]
pub enum ArgValue {
    U64(u64),
    Str(String),
}

impl ArgValue {
    fn render_json(&self) -> String {
        match self {
            ArgValue::U64(v) => v.to_string(),
            ArgValue::Str(s) => format!("\"{}\"", escape_json(s)),
        }
    }
}

/// Stable pid values for the Chrome-trace process grouping.
pub mod track {
    /// The wire / traffic generators.
    pub const WIRE: u32 = 1;
    /// The SR-IOV NIC (embedded switch, DMA, hairpin).
    pub const NIC: u32 = 2;
    /// vswitch VM `i` → pid `VSWITCH_BASE + i`.
    pub const VSWITCH_BASE: u32 = 100;
    /// Tenant VM `i` → pid `TENANT_BASE + i`.
    pub const TENANT_BASE: u32 = 200;
}

/// One structured trace event.
#[derive(Clone, PartialEq, Debug)]
pub struct TraceEvent {
    /// Simulated start time.
    pub at: Time,
    /// Event name, e.g. `"vswitch.forward"`.
    pub name: &'static str,
    /// Category for trace-viewer filtering: `wire|nic|vswitch|tenant|drop`.
    pub cat: &'static str,
    /// Process id in the trace viewer (see [`track`]).
    pub pid: u32,
    /// Thread id within the process (e.g. core index, port).
    pub tid: u32,
    /// `Some` renders a complete slice; `None` renders an instant.
    pub dur: Option<Dur>,
    /// Key/value payload shown in the viewer's args pane.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// An append-only event log with a size cap.
#[derive(Debug)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
    cap: usize,
    truncated: u64,
}

impl Default for TraceLog {
    fn default() -> Self {
        TraceLog {
            events: Vec::new(),
            cap: 4_000_000,
            truncated: 0,
        }
    }
}

impl TraceLog {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_cap(cap: usize) -> Self {
        TraceLog {
            cap,
            ..Self::default()
        }
    }

    pub fn push(&mut self, ev: TraceEvent) {
        if self.events.len() >= self.cap {
            self.truncated += 1;
            return;
        }
        self.events.push(ev);
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn truncated(&self) -> u64 {
        self.truncated
    }

    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Render as a Chrome trace-event JSON document.
    ///
    /// Timestamps are microseconds with nanosecond precision kept as a
    /// three-decimal fraction (the format's `ts` is a double).
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&render_chrome_event(ev));
        }
        out.push_str("\n]}\n");
        out
    }

    /// Render as JSON Lines: one object per event.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&render_jsonl_event(ev));
            out.push('\n');
        }
        out
    }
}

fn us_with_ns_precision(ns: u64) -> String {
    let whole = ns / 1_000;
    let frac = ns % 1_000;
    if frac == 0 {
        format!("{whole}")
    } else {
        format!("{whole}.{frac:03}")
    }
}

fn render_args(args: &[(&'static str, ArgValue)]) -> String {
    let body: Vec<String> = args
        .iter()
        .map(|(k, v)| format!("\"{}\":{}", escape_json(k), v.render_json()))
        .collect();
    format!("{{{}}}", body.join(","))
}

fn render_chrome_event(ev: &TraceEvent) -> String {
    let ts = us_with_ns_precision(ev.at.as_nanos());
    match ev.dur {
        Some(d) => format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{}}}",
            escape_json(ev.name),
            escape_json(ev.cat),
            ts,
            us_with_ns_precision(d.as_nanos()),
            ev.pid,
            ev.tid,
            render_args(&ev.args)
        ),
        None => format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{},\"tid\":{},\"args\":{}}}",
            escape_json(ev.name),
            escape_json(ev.cat),
            ts,
            ev.pid,
            ev.tid,
            render_args(&ev.args)
        ),
    }
}

fn render_jsonl_event(ev: &TraceEvent) -> String {
    let dur = match ev.dur {
        Some(d) => format!(",\"dur_ns\":{}", d.as_nanos()),
        None => String::new(),
    };
    format!(
        "{{\"t_ns\":{},\"name\":\"{}\",\"cat\":\"{}\",\"pid\":{},\"tid\":{}{},\"args\":{}}}",
        ev.at.as_nanos(),
        escape_json(ev.name),
        escape_json(ev.cat),
        ev.pid,
        ev.tid,
        dur,
        render_args(&ev.args)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> TraceLog {
        let mut log = TraceLog::new();
        log.push(TraceEvent {
            at: Time::from_nanos(1_500),
            name: "vswitch.forward",
            cat: "vswitch",
            pid: track::VSWITCH_BASE,
            tid: 0,
            dur: Some(Dur::nanos(250)),
            args: vec![("frame", ArgValue::U64(42)), ("hit", ArgValue::U64(1))],
        });
        log.push(TraceEvent {
            at: Time::from_nanos(2_000),
            name: "frame.drop",
            cat: "drop",
            pid: track::NIC,
            tid: 0,
            dur: None,
            args: vec![("cause", ArgValue::Str("nic-spoof".into()))],
        });
        log
    }

    #[test]
    fn chrome_trace_shape() {
        let text = sample_log().to_chrome_trace();
        assert!(text.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"ts\":1.500"));
        assert!(text.contains("\"dur\":0.250"));
        assert!(text.contains("\"ph\":\"i\""));
        assert!(text.contains("\"cause\":\"nic-spoof\""));
        assert!(text.trim_end().ends_with("]}"));
    }

    #[test]
    fn jsonl_one_object_per_line() {
        let text = sample_log().to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"t_ns\":1500,"));
        assert!(lines[1].contains("\"name\":\"frame.drop\""));
    }

    #[test]
    fn cap_truncates() {
        let mut log = TraceLog::with_cap(1);
        for _ in 0..3 {
            log.push(TraceEvent {
                at: Time::ZERO,
                name: "x",
                cat: "c",
                pid: 1,
                tid: 1,
                dur: None,
                args: vec![],
            });
        }
        assert_eq!(log.len(), 1);
        assert_eq!(log.truncated(), 2);
    }
}
