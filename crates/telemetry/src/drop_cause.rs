//! The typed vocabulary of frame-drop reasons.
//!
//! Replaces the stringly-typed `drop_frame(cause: &str)` the runtime
//! started with: every drop site names a variant, every variant feeds a
//! per-cause counter, and exhaustive matches catch dangling causes at
//! compile time.

use core::fmt;

/// Why the runtime discarded a frame.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum DropCause {
    /// The NIC rejected the operation (bad PF, unconfigured function).
    NicError,
    /// MAC anti-spoofing on VF ingress rejected the source address.
    NicSpoof,
    /// An operator wildcard filter on the embedded switch matched.
    NicFilter,
    /// VLAN tagging rules rejected the frame (foreign or missing tag).
    NicVlan,
    /// The VF↔VF hairpin engine's queue overflowed.
    HairpinOverflow,
    /// A frame reached the PF but no vswitch owns it.
    PfUnclaimed,
    /// A frame reached a VF that no vswitch or tenant owns.
    VfUnclaimed,
    /// A vswitch rx ring was full (CPU-bound loss under saturation).
    VswitchRing,
    /// A vswitch emitted to a port with no backing attachment.
    UnattachedPort,
    /// A frame was addressed to a tenant index that does not exist.
    NoSuchTenant,
    /// A tenant tried to transmit on a side with no VF.
    TenantNoVf,
    /// A vhost frame had no registered vswitch port to land on.
    VhostUnrouted,
    /// A frame was addressed to a TCP host index that does not exist.
    NoSuchHost,
    /// A TCP host received a frame for an address it does not serve.
    HostMisaddressed,
    /// A frame reached a vswitch whose VM is crashed or hung (fault
    /// injection; see `mts-faults`).
    VswitchDown,
    /// A frame met a physical link that is administratively or fault down.
    LinkDown,
    /// A frame traversed a vswitch whose flow rules were lost (wiped or
    /// partially dropped by a fault) before the controller reconciled —
    /// the rule-loss race window.
    RuleLostRaceWindow,
    /// A frame matched no flow rule (table miss) in a healthy vswitch.
    FlowMiss,
    /// Raw bytes arriving from an untrusted source (wire or tenant VF)
    /// failed to parse as a well-formed frame and were discarded at the
    /// ingress boundary instead of panicking a parser.
    MalformedFrame,
    /// Raw bytes parsed as a frame but exceeded the supported VXLAN
    /// encapsulation depth (decap-bomb defence; see `mts-net::wire`).
    MalformedEncap,
}

impl DropCause {
    /// Every cause, in stable (alphabetical-ish declaration) order.
    pub const ALL: [DropCause; 20] = [
        DropCause::NicError,
        DropCause::NicSpoof,
        DropCause::NicFilter,
        DropCause::NicVlan,
        DropCause::HairpinOverflow,
        DropCause::PfUnclaimed,
        DropCause::VfUnclaimed,
        DropCause::VswitchRing,
        DropCause::UnattachedPort,
        DropCause::NoSuchTenant,
        DropCause::TenantNoVf,
        DropCause::VhostUnrouted,
        DropCause::NoSuchHost,
        DropCause::HostMisaddressed,
        DropCause::VswitchDown,
        DropCause::LinkDown,
        DropCause::RuleLostRaceWindow,
        DropCause::FlowMiss,
        DropCause::MalformedFrame,
        DropCause::MalformedEncap,
    ];

    /// Whether this cause is only ever produced by injected faults or
    /// their recovery windows (the `mts-faults` blast-radius accounting).
    pub fn is_fault(self) -> bool {
        matches!(
            self,
            DropCause::VswitchDown | DropCause::LinkDown | DropCause::RuleLostRaceWindow
        )
    }

    /// Stable kebab-case label (the former string keys, kept for reports
    /// and CSV compatibility).
    pub fn as_str(self) -> &'static str {
        match self {
            DropCause::NicError => "nic-error",
            DropCause::NicSpoof => "nic-spoof",
            DropCause::NicFilter => "nic-filter",
            DropCause::NicVlan => "nic-vlan",
            DropCause::HairpinOverflow => "hairpin-overflow",
            DropCause::PfUnclaimed => "pf-unclaimed",
            DropCause::VfUnclaimed => "vf-unclaimed",
            DropCause::VswitchRing => "vswitch-ring",
            DropCause::UnattachedPort => "unattached-port",
            DropCause::NoSuchTenant => "no-such-tenant",
            DropCause::TenantNoVf => "tenant-no-vf",
            DropCause::VhostUnrouted => "vhost-unrouted",
            DropCause::NoSuchHost => "no-such-host",
            DropCause::HostMisaddressed => "host-misaddressed",
            DropCause::VswitchDown => "vswitch-down",
            DropCause::LinkDown => "link-down",
            DropCause::RuleLostRaceWindow => "rule-lost-race-window",
            DropCause::FlowMiss => "flow-miss",
            DropCause::MalformedFrame => "malformed-frame",
            DropCause::MalformedEncap => "malformed-encap",
        }
    }
}

impl fmt::Display for DropCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique_and_stable() {
        let mut seen = std::collections::BTreeSet::new();
        for c in DropCause::ALL {
            assert!(seen.insert(c.as_str()), "duplicate label {}", c);
        }
        assert_eq!(seen.len(), DropCause::ALL.len());
        assert_eq!(DropCause::NicSpoof.to_string(), "nic-spoof");
    }
}
