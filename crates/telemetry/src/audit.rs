//! The complete-mediation auditor.
//!
//! MTS's security argument (paper §4) is that *every* frame crossing a
//! tenant boundary is mediated by a vswitch — tenants must never talk
//! directly to each other or to the wire, even though they own SR-IOV
//! VFs. The auditor turns that property into a machine-checkable
//! predicate over recorded [`Journey`]s:
//!
//! For every delivered segment (origin endpoint → delivery endpoint)
//! where at least one side is a tenant VM, the segment must contain at
//! least one [`Hop::VswitchForward`] (a vswitch made the forwarding
//! decision), and — for SR-IOV deployments — at least one
//! [`Hop::NicSwitch`] (the embedded switch carried it, i.e. the frame
//! could not have bypassed the NIC). A frame the embedded switch
//! hairpins directly from one tenant VF to another is the canonical
//! violation: it was "forwarded" but never mediated.
//!
//! Dropped frames are not violations — mediation is about what gets
//! *delivered*.

use crate::journey::{Hop, Journey, JourneyLog, NicEndpoint};

/// One mediation failure.
#[derive(Clone, PartialEq, Debug)]
pub struct MediationViolation {
    pub frame: u64,
    pub reason: String,
}

/// Outcome of auditing a journey log.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct MediationReport {
    /// Segments that involved a tenant endpoint and were checked.
    pub checked: usize,
    /// Segments skipped because no tenant endpoint was involved.
    pub skipped: usize,
    pub violations: Vec<MediationViolation>,
}

impl MediationReport {
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Auditor configuration. Use [`MediationAuditor::sriov`] for MTS
/// Levels 1–3 (tenants on VFs, so the embedded switch must appear in
/// every mediated path); [`MediationAuditor::new`] only requires the
/// vswitch hop and also fits the vhost-based Baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct MediationAuditor {
    /// Additionally require a `NicSwitch` hop in each checked segment.
    pub require_embedded_switch: bool,
}

impl MediationAuditor {
    pub fn new() -> Self {
        MediationAuditor {
            require_embedded_switch: false,
        }
    }

    /// Strict variant for SR-IOV deployments (MTS Levels 1–3).
    pub fn sriov() -> Self {
        MediationAuditor {
            require_embedded_switch: true,
        }
    }

    /// Audit every journey in `log`.
    pub fn audit(&self, log: &JourneyLog) -> MediationReport {
        let mut report = MediationReport::default();
        for j in log.iter() {
            self.audit_journey(j, &mut report);
        }
        report
    }

    /// Audit one journey, accumulating into `report`.
    pub fn audit_journey(&self, j: &Journey, report: &mut MediationReport) {
        // Segment state since the last origin endpoint.
        let mut origin: Option<Endpoint> = None;
        let mut saw_vswitch = false;
        let mut saw_nic_switch = false;

        for rec in &j.hops {
            match &rec.hop {
                Hop::TenantTx { tenant, .. } => {
                    origin = Some(Endpoint::Tenant(*tenant));
                    saw_vswitch = false;
                    saw_nic_switch = false;
                }
                Hop::WireIngress { .. } => {
                    origin = Some(Endpoint::Wire);
                    saw_vswitch = false;
                    saw_nic_switch = false;
                }
                Hop::NicSwitch { from, to, .. } => {
                    saw_nic_switch = true;
                    // A direct tenant-VF → tenant-VF forward is a
                    // violation regardless of segment bookkeeping: the
                    // embedded switch itself bridged two tenants.
                    if let (
                        NicEndpoint::TenantVf { tenant: a },
                        NicEndpoint::TenantVf { tenant: b },
                    ) = (from, to)
                    {
                        report.violations.push(MediationViolation {
                            frame: j.frame,
                            reason: format!(
                                "embedded switch forwarded tenant {a} VF directly to \
                                 tenant {b} VF without vswitch mediation"
                            ),
                        });
                    }
                }
                Hop::VswitchRecv { .. } | Hop::VswitchForward { .. } => {
                    saw_vswitch = true;
                }
                Hop::TenantRx { tenant, .. } => {
                    self.check_segment(
                        j.frame,
                        origin,
                        Endpoint::Tenant(*tenant),
                        saw_vswitch,
                        saw_nic_switch,
                        report,
                    );
                    origin = None;
                }
                Hop::WireEgress { .. } => {
                    self.check_segment(
                        j.frame,
                        origin,
                        Endpoint::Wire,
                        saw_vswitch,
                        saw_nic_switch,
                        report,
                    );
                    origin = None;
                }
                Hop::Drop { .. } => {
                    // Discarded, never delivered: no mediation question.
                    origin = None;
                }
            }
        }
    }

    fn check_segment(
        &self,
        frame: u64,
        origin: Option<Endpoint>,
        dest: Endpoint,
        saw_vswitch: bool,
        saw_nic_switch: bool,
        report: &mut MediationReport,
    ) {
        let origin = match origin {
            Some(o) => o,
            // Delivery without a recorded origin (partial journey):
            // nothing sound to check.
            None => return,
        };
        let involves_tenant =
            matches!(origin, Endpoint::Tenant(_)) || matches!(dest, Endpoint::Tenant(_));
        if !involves_tenant {
            report.skipped += 1;
            return;
        }
        report.checked += 1;
        if !saw_vswitch {
            report.violations.push(MediationViolation {
                frame,
                reason: format!(
                    "frame delivered {} -> {} without traversing any vswitch",
                    origin.label(),
                    dest.label()
                ),
            });
        } else if self.require_embedded_switch && !saw_nic_switch {
            report.violations.push(MediationViolation {
                frame,
                reason: format!(
                    "frame delivered {} -> {} without traversing the NIC embedded \
                     switch (expected for an SR-IOV deployment)",
                    origin.label(),
                    dest.label()
                ),
            });
        }
    }
}

#[derive(Clone, Copy, PartialEq, Debug)]
enum Endpoint {
    Wire,
    Tenant(u8),
}

impl Endpoint {
    fn label(self) -> String {
        match self {
            Endpoint::Wire => "wire".to_string(),
            Endpoint::Tenant(t) => format!("tenant {t}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mts_sim::Time;

    fn t(ns: u64) -> Time {
        Time::from_nanos(ns)
    }

    /// A properly mediated tenant→tenant path (MTS v2v).
    fn mediated_v2v(log: &mut JourneyLog, frame: u64) {
        log.record(frame, t(0), Hop::TenantTx { tenant: 0, side: 0 });
        log.record(
            frame,
            t(10),
            Hop::NicSwitch {
                pf: 0,
                from: NicEndpoint::TenantVf { tenant: 0 },
                to: NicEndpoint::VswitchVf { vswitch: 0 },
                hairpin: true,
            },
        );
        log.record(
            frame,
            t(20),
            Hop::VswitchRecv {
                vswitch: 0,
                port: 1,
            },
        );
        log.record(
            frame,
            t(30),
            Hop::VswitchForward {
                vswitch: 0,
                cache_hit: true,
                outputs: 1,
            },
        );
        log.record(
            frame,
            t(40),
            Hop::NicSwitch {
                pf: 0,
                from: NicEndpoint::VswitchVf { vswitch: 0 },
                to: NicEndpoint::TenantVf { tenant: 1 },
                hairpin: true,
            },
        );
        log.record(frame, t(50), Hop::TenantRx { tenant: 1, side: 0 });
    }

    #[test]
    fn mediated_path_passes_strict_audit() {
        let mut log = JourneyLog::new();
        mediated_v2v(&mut log, 1);
        let report = MediationAuditor::sriov().audit(&log);
        assert!(
            report.ok(),
            "unexpected violations: {:?}",
            report.violations
        );
        assert_eq!(report.checked, 1);
    }

    #[test]
    fn direct_vf_to_vf_is_flagged() {
        let mut log = JourneyLog::new();
        log.record(9, t(0), Hop::TenantTx { tenant: 0, side: 0 });
        log.record(
            9,
            t(10),
            Hop::NicSwitch {
                pf: 0,
                from: NicEndpoint::TenantVf { tenant: 0 },
                to: NicEndpoint::TenantVf { tenant: 1 },
                hairpin: true,
            },
        );
        log.record(9, t(20), Hop::TenantRx { tenant: 1, side: 0 });
        let report = MediationAuditor::sriov().audit(&log);
        // Flagged twice: once by the direct-forward rule, once by the
        // no-vswitch-in-segment rule.
        assert!(!report.ok());
        assert!(report.violations.iter().any(|v| v.frame == 9));
    }

    #[test]
    fn dropped_frames_are_not_violations() {
        let mut log = JourneyLog::new();
        log.record(3, t(0), Hop::TenantTx { tenant: 0, side: 0 });
        log.record(
            3,
            t(5),
            Hop::Drop {
                cause: crate::DropCause::NicSpoof,
            },
        );
        let report = MediationAuditor::sriov().audit(&log);
        assert!(report.ok());
        assert_eq!(report.checked, 0);
    }

    #[test]
    fn wire_to_wire_segments_are_skipped() {
        let mut log = JourneyLog::new();
        log.record(4, t(0), Hop::WireIngress { pf: 0 });
        log.record(
            4,
            t(10),
            Hop::VswitchRecv {
                vswitch: 0,
                port: 0,
            },
        );
        log.record(4, t(20), Hop::WireEgress { pf: 1 });
        let report = MediationAuditor::sriov().audit(&log);
        assert!(report.ok());
        assert_eq!(report.checked, 0);
        assert_eq!(report.skipped, 1);
    }

    #[test]
    fn lenient_auditor_accepts_vhost_baseline() {
        // Baseline: tenant traffic rides vhost into the PF vswitch —
        // no embedded-switch hop exists for the tenant leg.
        let mut log = JourneyLog::new();
        log.record(5, t(0), Hop::TenantTx { tenant: 0, side: 0 });
        log.record(
            5,
            t(10),
            Hop::VswitchRecv {
                vswitch: 0,
                port: 2,
            },
        );
        log.record(
            5,
            t(20),
            Hop::VswitchForward {
                vswitch: 0,
                cache_hit: false,
                outputs: 1,
            },
        );
        log.record(5, t(30), Hop::TenantRx { tenant: 1, side: 0 });
        assert!(MediationAuditor::new().audit(&log).ok());
        assert!(!MediationAuditor::sriov().audit(&log).ok());
    }
}
