//! Deterministic observability for the MTS simulator.
//!
//! The paper's core security argument is *complete mediation*: every
//! tenant↔tenant and tenant↔host frame must traverse the SR-IOV embedded
//! switch **and** a vswitch VM. Aggregate throughput numbers cannot show
//! whether that actually happened — this crate makes the path of every
//! frame observable:
//!
//! - [`metrics`] — a registry of named, labelled counters, gauges and
//!   histograms (reusing [`mts_sim::Histogram`]), timestamped with
//!   simulated [`mts_sim::Time`], never wall clock, so instrumented runs
//!   stay bit-for-bit deterministic. Exports Prometheus text format.
//! - [`journey`] — per-frame *journey* records: the ordered hops a frame
//!   took (VF ingress → embedded-switch verdict → vswitch table/cache →
//!   egress or drop).
//! - [`audit`] — the [`MediationAuditor`], which consumes journeys and
//!   checks the complete-mediation invariant, turning the paper's
//!   security property into a runtime-checkable observable.
//! - [`trace`] — structured trace events exported as Chrome trace-event
//!   JSON (openable in Perfetto / `chrome://tracing`) and as JSONL.
//! - [`DropCause`] — the typed vocabulary of frame-drop reasons, feeding
//!   per-cause counters.
//!
//! The whole layer is carried by [`Telemetry`], an `Option`-dispatched
//! sink that is a single branch (and no allocation) when disabled, so
//! uninstrumented runs pay nothing. See `OBSERVABILITY.md` at the repo
//! root for the event taxonomy and exporter formats.

pub mod audit;
pub mod drop_cause;
pub mod journey;
mod json;
pub mod metrics;
pub mod recorder;
pub mod trace;

pub use audit::{MediationAuditor, MediationReport, MediationViolation};
pub use drop_cause::DropCause;
pub use journey::{Hop, Journey, JourneyLog, NicEndpoint};
pub use metrics::{MetricsRegistry, BUCKET_BOUNDS_NS};
pub use recorder::{Recorder, Telemetry};
pub use trace::{TraceEvent, TraceLog};
