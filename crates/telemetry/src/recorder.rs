//! The telemetry sink carried by the simulation `World`.
//!
//! [`Telemetry`] is an `Option`-dispatched handle: disabled, it is a
//! single `None` check on every instrumentation site — no allocation,
//! no formatting, no branches beyond the early-out — so uninstrumented
//! runs (benchmarks, figure reproduction) pay nothing measurable.
//! Enabled, it owns a [`Recorder`] bundling the metrics registry, the
//! trace log and the per-frame journey log.

use mts_sim::{Dur, Time};

use crate::journey::{Hop, JourneyLog};
use crate::metrics::MetricsRegistry;
use crate::trace::{track, ArgValue, TraceEvent, TraceLog};

/// The live recording state behind an enabled [`Telemetry`].
#[derive(Debug, Default)]
pub struct Recorder {
    pub metrics: MetricsRegistry,
    pub trace: TraceLog,
    pub journeys: JourneyLog,
}

impl Recorder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one hop of a frame's journey and mirror it into the trace
    /// log as an event on the owning component's timeline.
    pub fn hop(&mut self, frame: u64, at: Time, hop: Hop) {
        self.hop_timed(frame, at, hop, None);
    }

    /// Like [`Recorder::hop`], with a duration: the trace event renders
    /// as a slice covering `dur` (e.g. vswitch processing cost).
    pub fn hop_timed(&mut self, frame: u64, at: Time, hop: Hop, dur: Option<Dur>) {
        let (cat, pid, tid) = placement(&hop);
        let mut args: Vec<(&'static str, ArgValue)> = vec![("frame", ArgValue::U64(frame))];
        match &hop {
            Hop::NicSwitch {
                from, to, hairpin, ..
            } => {
                args.push(("from", ArgValue::Str(from.label())));
                args.push(("to", ArgValue::Str(to.label())));
                args.push(("hairpin", ArgValue::U64(u64::from(*hairpin))));
            }
            Hop::VswitchForward {
                cache_hit, outputs, ..
            } => {
                args.push(("cache_hit", ArgValue::U64(u64::from(*cache_hit))));
                args.push(("outputs", ArgValue::U64(u64::from(*outputs))));
            }
            Hop::Drop { cause } => {
                args.push(("cause", ArgValue::Str(cause.as_str().to_string())));
            }
            _ => {}
        }
        self.trace.push(TraceEvent {
            at,
            name: hop.name(),
            cat,
            pid,
            tid,
            dur,
            args,
        });
        self.journeys.record(frame, at, hop);
    }
}

/// Map a hop onto its trace-viewer category and (pid, tid) placement.
fn placement(hop: &Hop) -> (&'static str, u32, u32) {
    match hop {
        Hop::WireIngress { pf } | Hop::WireEgress { pf } => ("wire", track::WIRE, u32::from(*pf)),
        Hop::NicSwitch { pf, .. } => ("nic", track::NIC, u32::from(*pf)),
        Hop::VswitchRecv { vswitch, port } => {
            ("vswitch", track::VSWITCH_BASE + u32::from(*vswitch), *port)
        }
        Hop::VswitchForward { vswitch, .. } => {
            ("vswitch", track::VSWITCH_BASE + u32::from(*vswitch), 0)
        }
        Hop::TenantRx { tenant, side } | Hop::TenantTx { tenant, side } => (
            "tenant",
            track::TENANT_BASE + u32::from(*tenant),
            u32::from(*side),
        ),
        Hop::Drop { .. } => ("drop", track::NIC, 0),
    }
}

/// Re-exported so instrumentation sites can build [`Hop::NicSwitch`]
/// endpoints without importing the journey module separately.
pub use crate::journey::NicEndpoint as Endpoint;

/// The handle embedded in the simulation `World`.
#[derive(Debug, Default)]
pub struct Telemetry {
    inner: Option<Box<Recorder>>,
}

impl Telemetry {
    /// A no-op sink: every instrumentation site short-circuits.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// A live sink recording metrics, traces and journeys.
    pub fn enabled() -> Self {
        Telemetry {
            inner: Some(Box::default()),
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Mutable access for instrumentation sites:
    /// `if let Some(rec) = world.telemetry.rec() { ... }`.
    #[inline]
    pub fn rec(&mut self) -> Option<&mut Recorder> {
        self.inner.as_deref_mut()
    }

    /// Shared access for exporters and assertions after a run.
    pub fn recorder(&self) -> Option<&Recorder> {
        self.inner.as_deref()
    }

    /// Consume the handle, yielding the recorder if one was live.
    pub fn take(self) -> Option<Recorder> {
        self.inner.map(|b| *b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DropCause;

    #[test]
    fn disabled_sink_is_inert() {
        let mut t = Telemetry::disabled();
        assert!(!t.is_enabled());
        assert!(t.rec().is_none());
        assert!(t.recorder().is_none());
        assert!(t.take().is_none());
    }

    #[test]
    fn enabled_sink_records_hops_everywhere() {
        let mut t = Telemetry::enabled();
        assert!(t.is_enabled());
        let rec = t.rec().unwrap();
        rec.hop(
            11,
            Time::from_nanos(100),
            Hop::TenantTx { tenant: 2, side: 1 },
        );
        rec.hop(
            11,
            Time::from_nanos(150),
            Hop::Drop {
                cause: DropCause::VswitchRing,
            },
        );
        let rec = t.recorder().unwrap();
        assert_eq!(rec.trace.len(), 2);
        assert_eq!(rec.journeys.len(), 1);
        let j = rec.journeys.get(11).unwrap();
        assert!(j.dropped());
        let jsonl = rec.trace.to_jsonl();
        assert!(jsonl.contains("\"cause\":\"vswitch-ring\""));
        assert!(jsonl.contains(&format!("\"pid\":{}", track::TENANT_BASE + 2)));
    }
}
