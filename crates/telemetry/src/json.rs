//! Minimal JSON string escaping for the hand-rolled exporters.
//!
//! The exporters emit only objects whose shape is fixed at compile time,
//! so a full JSON serializer is unnecessary; the sole dynamic risk is
//! string content, handled here per RFC 8259 §7.

/// Escape `s` for inclusion inside a JSON string literal (no quotes added).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
