//! A deterministic registry of named, labelled metrics.
//!
//! Three metric kinds, mirroring the Prometheus data model:
//!
//! - **counters** — monotonically increasing `u64` (frames forwarded,
//!   drops by cause, cache misses);
//! - **gauges** — last-write-wins `f64` (ring occupancy high-water mark,
//!   configured rate);
//! - **histograms** — [`mts_sim::Histogram`] distributions (per-hop
//!   latency in simulated nanoseconds).
//!
//! Every series is keyed by `(name, sorted label pairs)` in `BTreeMap`s,
//! so iteration order — and therefore every exporter byte — is a pure
//! function of the recorded values. No wall-clock time is ever read;
//! timestamps come from the simulation's [`mts_sim::Time`].

use std::collections::BTreeMap;

use mts_sim::Histogram;

use crate::json::escape_json;

/// A fully-resolved series key: metric name plus sorted `label=value` pairs.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct SeriesKey {
    pub name: String,
    pub labels: Vec<(String, String)>,
}

impl SeriesKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        SeriesKey {
            name: name.to_string(),
            labels,
        }
    }

    fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let body: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{}=\"{}\"", k, prom_escape(v)))
            .collect();
        format!("{}{{{}}}", self.name, body.join(","))
    }

    /// Render with extra label pairs appended (used for quantile series).
    fn render_with(&self, extra: &[(&str, &str)]) -> String {
        let mut labels = self.labels.clone();
        for (k, v) in extra {
            labels.push((k.to_string(), v.to_string()));
        }
        labels.sort();
        let body: Vec<String> = labels
            .iter()
            .map(|(k, v)| format!("{}=\"{}\"", k, prom_escape(v)))
            .collect();
        format!("{}{{{}}}", self.name, body.join(","))
    }
}

fn prom_escape(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Registry of counters, gauges and histograms.
#[derive(Default, Debug)]
pub struct MetricsRegistry {
    counters: BTreeMap<SeriesKey, u64>,
    gauges: BTreeMap<SeriesKey, f64>,
    histograms: BTreeMap<SeriesKey, Histogram>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `v` to the counter `name` with the given labels.
    pub fn counter_add(&mut self, name: &str, labels: &[(&str, &str)], v: u64) {
        *self
            .counters
            .entry(SeriesKey::new(name, labels))
            .or_insert(0) += v;
    }

    /// Increment the counter by one.
    pub fn counter_inc(&mut self, name: &str, labels: &[(&str, &str)]) {
        self.counter_add(name, labels, 1);
    }

    /// Set the gauge `name` to `v` (last write wins).
    pub fn gauge_set(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.gauges.insert(SeriesKey::new(name, labels), v);
    }

    /// Raise the gauge to `v` if `v` exceeds the current value
    /// (high-water-mark semantics).
    pub fn gauge_max(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        let slot = self
            .gauges
            .entry(SeriesKey::new(name, labels))
            .or_insert(f64::NEG_INFINITY);
        if v > *slot {
            *slot = v;
        }
    }

    /// Record `v` into the histogram `name`.
    pub fn observe(&mut self, name: &str, labels: &[(&str, &str)], v: u64) {
        self.histograms
            .entry(SeriesKey::new(name, labels))
            .or_default()
            .record(v);
    }

    /// Current value of a counter series (0 if never touched).
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.counters
            .get(&SeriesKey::new(name, labels))
            .copied()
            .unwrap_or(0)
    }

    /// Sum of every counter series sharing `name`, regardless of labels.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Iterate `(key, value)` over every counter series named `name`.
    pub fn counters_named<'a>(
        &'a self,
        name: &'a str,
    ) -> impl Iterator<Item = (&'a SeriesKey, u64)> + 'a {
        self.counters
            .iter()
            .filter(move |(k, _)| k.name == name)
            .map(|(k, v)| (k, *v))
    }

    /// Access a histogram series, if it exists.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Histogram> {
        self.histograms.get(&SeriesKey::new(name, labels))
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Render the registry in the Prometheus text exposition format.
    ///
    /// Counters become `# TYPE <name> counter` series; gauges `gauge`;
    /// histograms render as Prometheus *histograms*: cumulative
    /// `<name>_bucket{le="..."}` series over the fixed decade bounds in
    /// [`BUCKET_BOUNDS_NS`] plus `+Inf`, followed by quantile series
    /// (0.5/0.9/0.99/0.999 — the SLO tail included) and `_sum`/`_count`.
    /// The quantiles come from the HDR-style log-bucketed histogram, so
    /// they are bucket midpoints, not exact inputs. Output is
    /// byte-for-byte deterministic for a given registry state.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for (key, v) in &self.counters {
            if last_name != Some(key.name.as_str()) {
                out.push_str(&format!("# TYPE {} counter\n", key.name));
                last_name = Some(key.name.as_str());
            }
            out.push_str(&format!("{} {}\n", key.render(), v));
        }
        last_name = None;
        for (key, v) in &self.gauges {
            if last_name != Some(key.name.as_str()) {
                out.push_str(&format!("# TYPE {} gauge\n", key.name));
                last_name = Some(key.name.as_str());
            }
            out.push_str(&format!("{} {}\n", key.render(), fmt_f64(*v)));
        }
        last_name = None;
        for (key, h) in &self.histograms {
            if last_name != Some(key.name.as_str()) {
                out.push_str(&format!("# TYPE {} histogram\n", key.name));
                last_name = Some(key.name.as_str());
            }
            for bound in BUCKET_BOUNDS_NS {
                out.push_str(&format!(
                    "{} {}\n",
                    bucket_series(key, &bound.to_string()),
                    h.count_le(bound)
                ));
            }
            out.push_str(&format!("{} {}\n", bucket_series(key, "+Inf"), h.count()));
            for q in [0.5_f64, 0.9, 0.99, 0.999] {
                let qv = h.percentile(q * 100.0);
                out.push_str(&format!(
                    "{} {}\n",
                    key.render_with(&[("quantile", &fmt_f64(q))]),
                    qv
                ));
            }
            let sum = (h.mean() * h.count() as f64).round() as u64;
            out.push_str(&format!("{}_sum{} {}\n", key.name, render_suffix(key), sum));
            out.push_str(&format!(
                "{}_count{} {}\n",
                key.name,
                render_suffix(key),
                h.count()
            ));
        }
        out
    }

    /// Render the registry as JSON Lines: one self-describing object per
    /// series, `jq`/pandas-friendly. Label keys appear in sorted order
    /// (the [`SeriesKey`] canonical order), so the output — including the
    /// cycle-attribution labels `layer`/`tenant`/`attribution` — is
    /// byte-for-byte deterministic.
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        for (key, v) in &self.counters {
            out.push_str(&format!(
                "{{\"kind\":\"counter\",\"name\":\"{}\",\"labels\":{},\"value\":{}}}\n",
                escape_json(&key.name),
                render_labels_json(key),
                v
            ));
        }
        for (key, v) in &self.gauges {
            out.push_str(&format!(
                "{{\"kind\":\"gauge\",\"name\":\"{}\",\"labels\":{},\"value\":{}}}\n",
                escape_json(&key.name),
                render_labels_json(key),
                fmt_f64(*v)
            ));
        }
        for (key, h) in &self.histograms {
            let s = h.summary();
            out.push_str(&format!(
                "{{\"kind\":\"histogram\",\"name\":\"{}\",\"labels\":{},\"count\":{},\"min\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{},\"max\":{}}}\n",
                escape_json(&key.name),
                render_labels_json(key),
                s.count,
                s.min,
                s.p50,
                s.p90,
                s.p99,
                s.p999,
                s.max
            ));
        }
        out
    }
}

/// The fixed `le` bounds (ns) for Prometheus `_bucket` series: decades
/// from 100 ns to 1 s — a frame's journey through the simulated DUT fits
/// this range at every security level.
pub const BUCKET_BOUNDS_NS: [u64; 8] = [
    100,
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
];

fn bucket_series(key: &SeriesKey, le: &str) -> String {
    let mut labels = key.labels.clone();
    labels.push(("le".to_string(), le.to_string()));
    labels.sort();
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", k, prom_escape(v)))
        .collect();
    format!("{}_bucket{{{}}}", key.name, body.join(","))
}

fn render_labels_json(key: &SeriesKey) -> String {
    let body: Vec<String> = key
        .labels
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", escape_json(k), escape_json(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

fn render_suffix(key: &SeriesKey) -> String {
    if key.labels.is_empty() {
        String::new()
    } else {
        let body: Vec<String> = key
            .labels
            .iter()
            .map(|(k, v)| format!("{}=\"{}\"", k, prom_escape(v)))
            .collect();
        format!("{{{}}}", body.join(","))
    }
}

/// Format an f64 without scientific notation surprises: integers render
/// bare ("3"), fractions keep their shortest round-trip form.
fn fmt_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{}", v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label_set() {
        let mut m = MetricsRegistry::new();
        m.counter_inc("frames_total", &[("tenant", "0")]);
        m.counter_add("frames_total", &[("tenant", "0")], 2);
        m.counter_inc("frames_total", &[("tenant", "1")]);
        assert_eq!(m.counter_value("frames_total", &[("tenant", "0")]), 3);
        assert_eq!(m.counter_value("frames_total", &[("tenant", "1")]), 1);
        assert_eq!(m.counter_total("frames_total"), 4);
    }

    #[test]
    fn label_order_is_canonicalized() {
        let mut m = MetricsRegistry::new();
        m.counter_inc("x", &[("b", "2"), ("a", "1")]);
        m.counter_inc("x", &[("a", "1"), ("b", "2")]);
        assert_eq!(m.counter_value("x", &[("a", "1"), ("b", "2")]), 2);
    }

    #[test]
    fn prometheus_rendering_is_deterministic_and_typed() {
        let mut m = MetricsRegistry::new();
        m.counter_add("mts_drops_total", &[("cause", "nic-spoof")], 7);
        m.gauge_set("mts_ring_occupancy", &[("vswitch", "0")], 12.0);
        m.observe("mts_hop_ns", &[("hop", "nic")], 640);
        m.observe("mts_hop_ns", &[("hop", "nic")], 640);
        let text = m.render_prometheus();
        let again = m.render_prometheus();
        assert_eq!(text, again);
        assert!(text.contains("# TYPE mts_drops_total counter"));
        assert!(text.contains("mts_drops_total{cause=\"nic-spoof\"} 7"));
        assert!(text.contains("# TYPE mts_ring_occupancy gauge"));
        assert!(text.contains("mts_ring_occupancy{vswitch=\"0\"} 12"));
        assert!(text.contains("# TYPE mts_hop_ns histogram"));
        assert!(text.contains("mts_hop_ns_count{hop=\"nic\"} 2"));
        // Cumulative buckets: both 640 ns observations are ≤ 1 µs.
        assert!(text.contains("mts_hop_ns_bucket{hop=\"nic\",le=\"100\"} 0"));
        assert!(text.contains("mts_hop_ns_bucket{hop=\"nic\",le=\"1000\"} 2"));
        assert!(text.contains("mts_hop_ns_bucket{hop=\"nic\",le=\"+Inf\"} 2"));
        // The SLO tail quantile is rendered alongside the buckets.
        assert!(text.contains("mts_hop_ns{hop=\"nic\",quantile=\"0.999\"}"));
    }

    #[test]
    fn jsonl_orders_attribution_labels_deterministically() {
        let mut m = MetricsRegistry::new();
        // Insert with shuffled label order: the canonical (sorted) order
        // must come out regardless.
        m.counter_add(
            "mts_cycles_ns_total",
            &[
                ("tenant", "0"),
                ("layer", "vswitch"),
                ("attribution", "exact"),
            ],
            640,
        );
        m.observe(
            "mts_cycles_grant_ns",
            &[
                ("attribution", "exact"),
                ("tenant", "0"),
                ("layer", "vswitch"),
            ],
            640,
        );
        let text = m.render_jsonl();
        assert_eq!(text, m.render_jsonl(), "rendering must be idempotent");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains(
            "\"labels\":{\"attribution\":\"exact\",\"layer\":\"vswitch\",\"tenant\":\"0\"}"
        ));
        assert!(lines[0].contains("\"kind\":\"counter\""));
        assert!(lines[0].contains("\"value\":640"));
        assert!(lines[1].contains("\"kind\":\"histogram\""));
        assert!(lines[1].contains(
            "\"labels\":{\"attribution\":\"exact\",\"layer\":\"vswitch\",\"tenant\":\"0\"}"
        ));
        assert!(lines[1].contains("\"count\":1"));
        assert!(lines[1].contains("\"p999\":"));
    }

    #[test]
    fn gauge_max_keeps_high_water_mark() {
        let mut m = MetricsRegistry::new();
        m.gauge_max("hwm", &[], 3.0);
        m.gauge_max("hwm", &[], 9.0);
        m.gauge_max("hwm", &[], 5.0);
        assert!(m.render_prometheus().contains("hwm 9"));
    }
}
