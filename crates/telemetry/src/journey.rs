//! Per-frame journey records.
//!
//! A *journey* is the ordered list of hops one frame took through the
//! deployment, correlated by the frame's globally-unique id. Journeys
//! are what the [`crate::audit::MediationAuditor`] consumes to check the
//! paper's complete-mediation property, and what the trace exporters
//! flatten into timeline rows.

use std::collections::BTreeMap;

use mts_sim::Time;

use crate::drop_cause::DropCause;

/// An endpoint class on the SR-IOV NIC, as seen by the embedded switch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NicEndpoint {
    /// The physical uplink (external wire).
    Wire,
    /// The physical function (kernel / vswitch attach point in Baseline).
    Pf,
    /// A VF owned directly by a tenant VM.
    TenantVf { tenant: u8 },
    /// A VF owned by a vswitch VM (MTS mediation path).
    VswitchVf { vswitch: u8 },
}

impl NicEndpoint {
    pub fn label(self) -> String {
        match self {
            NicEndpoint::Wire => "wire".to_string(),
            NicEndpoint::Pf => "pf".to_string(),
            NicEndpoint::TenantVf { tenant } => format!("tenant-vf:{tenant}"),
            NicEndpoint::VswitchVf { vswitch } => format!("vswitch-vf:{vswitch}"),
        }
    }
}

/// One step of a frame's path through the deployment.
#[derive(Clone, PartialEq, Debug)]
pub enum Hop {
    /// Frame entered from the external wire on physical port `pf`.
    WireIngress { pf: u8 },
    /// The NIC's embedded switch forwarded the frame between two
    /// endpoint classes (the per-frame mediation verdict of the VEB).
    NicSwitch {
        pf: u8,
        from: NicEndpoint,
        to: NicEndpoint,
        /// True when the frame took the VF↔VF hairpin engine.
        hairpin: bool,
    },
    /// A vswitch VM dequeued the frame from its rx ring.
    VswitchRecv { vswitch: u8, port: u32 },
    /// The vswitch pipeline classified the frame and planned outputs.
    VswitchForward {
        vswitch: u8,
        /// True when the flow-cache hit; false means slow-path table walk.
        cache_hit: bool,
        outputs: u8,
    },
    /// Delivered into a tenant VM (side 0 = a-side VF, 1 = b-side VF).
    TenantRx { tenant: u8, side: u8 },
    /// A tenant VM transmitted the frame on one of its VFs.
    TenantTx { tenant: u8, side: u8 },
    /// Frame left the deployment on physical port `pf` toward the wire.
    WireEgress { pf: u8 },
    /// Frame was discarded.
    Drop { cause: DropCause },
}

impl Hop {
    /// Short event name for traces (`category.action`).
    pub fn name(&self) -> &'static str {
        match self {
            Hop::WireIngress { .. } => "wire.ingress",
            Hop::NicSwitch { .. } => "nic.switch",
            Hop::VswitchRecv { .. } => "vswitch.recv",
            Hop::VswitchForward { .. } => "vswitch.forward",
            Hop::TenantRx { .. } => "tenant.rx",
            Hop::TenantTx { .. } => "tenant.tx",
            Hop::WireEgress { .. } => "wire.egress",
            Hop::Drop { .. } => "frame.drop",
        }
    }
}

/// A hop plus the simulated instant it happened.
#[derive(Clone, PartialEq, Debug)]
pub struct JourneyHop {
    pub at: Time,
    pub hop: Hop,
}

/// The full recorded path of one frame.
#[derive(Clone, PartialEq, Debug)]
pub struct Journey {
    pub frame: u64,
    pub hops: Vec<JourneyHop>,
}

impl Journey {
    /// True if any hop is a drop.
    pub fn dropped(&self) -> bool {
        self.hops.iter().any(|h| matches!(h.hop, Hop::Drop { .. }))
    }
}

/// All journeys of a run, keyed by frame id (deterministic iteration).
#[derive(Debug)]
pub struct JourneyLog {
    journeys: BTreeMap<u64, Journey>,
    /// Maximum number of distinct frames to track; hops for frames past
    /// the cap are counted in `truncated` instead of recorded.
    cap: usize,
    truncated: u64,
}

impl Default for JourneyLog {
    fn default() -> Self {
        JourneyLog {
            journeys: BTreeMap::new(),
            cap: 1_000_000,
            truncated: 0,
        }
    }
}

impl JourneyLog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Bound the number of tracked frames (saturation runs can emit
    /// millions; the auditor only needs a representative window).
    pub fn with_cap(cap: usize) -> Self {
        JourneyLog {
            cap,
            ..Self::default()
        }
    }

    /// Append `hop` to frame `frame`'s journey at simulated time `at`.
    pub fn record(&mut self, frame: u64, at: Time, hop: Hop) {
        if let Some(j) = self.journeys.get_mut(&frame) {
            j.hops.push(JourneyHop { at, hop });
            return;
        }
        if self.journeys.len() >= self.cap {
            self.truncated += 1;
            return;
        }
        self.journeys.insert(
            frame,
            Journey {
                frame,
                hops: vec![JourneyHop { at, hop }],
            },
        );
    }

    pub fn get(&self, frame: u64) -> Option<&Journey> {
        self.journeys.get(&frame)
    }

    pub fn len(&self) -> usize {
        self.journeys.len()
    }

    pub fn is_empty(&self) -> bool {
        self.journeys.is_empty()
    }

    /// Frames whose journeys were NOT recorded because the cap was hit.
    pub fn truncated(&self) -> u64 {
        self.truncated
    }

    pub fn iter(&self) -> impl Iterator<Item = &Journey> {
        self.journeys.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journeys_accumulate_hops_in_order() {
        let mut log = JourneyLog::new();
        log.record(
            7,
            Time::from_nanos(10),
            Hop::TenantTx { tenant: 0, side: 0 },
        );
        log.record(
            7,
            Time::from_nanos(20),
            Hop::NicSwitch {
                pf: 0,
                from: NicEndpoint::TenantVf { tenant: 0 },
                to: NicEndpoint::VswitchVf { vswitch: 0 },
                hairpin: true,
            },
        );
        let j = log.get(7).unwrap();
        assert_eq!(j.hops.len(), 2);
        assert_eq!(j.hops[0].hop.name(), "tenant.tx");
        assert!(!j.dropped());
    }

    #[test]
    fn cap_stops_new_frames_but_not_existing() {
        let mut log = JourneyLog::with_cap(1);
        log.record(1, Time::from_nanos(0), Hop::WireIngress { pf: 0 });
        log.record(2, Time::from_nanos(1), Hop::WireIngress { pf: 0 });
        log.record(1, Time::from_nanos(2), Hop::WireEgress { pf: 1 });
        assert_eq!(log.len(), 1);
        assert_eq!(log.truncated(), 1);
        assert_eq!(log.get(1).unwrap().hops.len(), 2);
    }
}
