//! Golden-file tests: the exporters' output is a public contract — trace
//! viewers and scripts parse it — so a hand-built log must render
//! byte-for-byte identically, forever. Quantile values reflect the
//! log-bucketed histogram's bucket midpoints, not exact inputs.

use mts_sim::{Dur, Time};
use mts_telemetry::trace::{track, ArgValue};
use mts_telemetry::{MetricsRegistry, TraceEvent, TraceLog};

fn sample_trace() -> TraceLog {
    let mut log = TraceLog::new();
    log.push(TraceEvent {
        at: Time::from_nanos(20_101),
        name: "nic.switch",
        cat: "nic",
        pid: track::NIC,
        tid: 0,
        dur: None,
        args: vec![
            ("frame", ArgValue::U64(7)),
            ("from", ArgValue::Str("wire".into())),
            ("to", ArgValue::Str("vswitch-vf:1".into())),
            ("hairpin", ArgValue::U64(0)),
        ],
    });
    log.push(TraceEvent {
        at: Time::from_nanos(21_000),
        name: "vswitch.forward",
        cat: "vswitch",
        pid: track::VSWITCH_BASE + 1,
        tid: 3,
        dur: Some(Dur::nanos(1_250)),
        args: vec![("frame", ArgValue::U64(7)), ("cache_hit", ArgValue::U64(1))],
    });
    log
}

fn sample_metrics() -> MetricsRegistry {
    let mut m = MetricsRegistry::new();
    m.counter_add("mts_drops_total", &[("cause", "vf-unclaimed")], 3);
    m.counter_add("mts_tenant_rx_total", &[("tenant", "0")], 100);
    m.counter_add("mts_tenant_rx_total", &[("tenant", "1")], 96);
    m.gauge_max(
        "mts_vswitch_ring_hwm",
        &[("vswitch", "0"), ("port", "2")],
        5.0,
    );
    for v in [1000, 2000, 3000, 4000] {
        m.observe("mts_e2e_latency_ns", &[], v);
    }
    m
}

#[test]
fn chrome_trace_golden() {
    let expected = concat!(
        "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n",
        "{\"name\":\"nic.switch\",\"cat\":\"nic\",\"ph\":\"i\",\"s\":\"t\",",
        "\"ts\":20.101,\"pid\":2,\"tid\":0,\"args\":{\"frame\":7,",
        "\"from\":\"wire\",\"to\":\"vswitch-vf:1\",\"hairpin\":0}},\n",
        "{\"name\":\"vswitch.forward\",\"cat\":\"vswitch\",\"ph\":\"X\",",
        "\"ts\":21,\"dur\":1.250,\"pid\":101,\"tid\":3,",
        "\"args\":{\"frame\":7,\"cache_hit\":1}}\n",
        "]}\n",
    );
    assert_eq!(sample_trace().to_chrome_trace(), expected);
}

#[test]
fn jsonl_golden() {
    let expected = concat!(
        "{\"t_ns\":20101,\"name\":\"nic.switch\",\"cat\":\"nic\",\"pid\":2,",
        "\"tid\":0,\"args\":{\"frame\":7,\"from\":\"wire\",",
        "\"to\":\"vswitch-vf:1\",\"hairpin\":0}}\n",
        "{\"t_ns\":21000,\"name\":\"vswitch.forward\",\"cat\":\"vswitch\",",
        "\"pid\":101,\"tid\":3,\"dur_ns\":1250,",
        "\"args\":{\"frame\":7,\"cache_hit\":1}}\n",
    );
    assert_eq!(sample_trace().to_jsonl(), expected);
}

#[test]
fn prometheus_golden() {
    let expected = "\
# TYPE mts_drops_total counter
mts_drops_total{cause=\"vf-unclaimed\"} 3
# TYPE mts_tenant_rx_total counter
mts_tenant_rx_total{tenant=\"0\"} 100
mts_tenant_rx_total{tenant=\"1\"} 96
# TYPE mts_vswitch_ring_hwm gauge
mts_vswitch_ring_hwm{port=\"2\",vswitch=\"0\"} 5
# TYPE mts_e2e_latency_ns histogram
mts_e2e_latency_ns_bucket{le=\"100\"} 0
mts_e2e_latency_ns_bucket{le=\"1000\"} 1
mts_e2e_latency_ns_bucket{le=\"10000\"} 4
mts_e2e_latency_ns_bucket{le=\"100000\"} 4
mts_e2e_latency_ns_bucket{le=\"1000000\"} 4
mts_e2e_latency_ns_bucket{le=\"10000000\"} 4
mts_e2e_latency_ns_bucket{le=\"100000000\"} 4
mts_e2e_latency_ns_bucket{le=\"1000000000\"} 4
mts_e2e_latency_ns_bucket{le=\"+Inf\"} 4
mts_e2e_latency_ns{quantile=\"0.5\"} 1984
mts_e2e_latency_ns{quantile=\"0.9\"} 3968
mts_e2e_latency_ns{quantile=\"0.99\"} 3968
mts_e2e_latency_ns{quantile=\"0.999\"} 3968
mts_e2e_latency_ns_sum 10000
mts_e2e_latency_ns_count 4
";
    assert_eq!(sample_metrics().render_prometheus(), expected);
}

#[test]
fn metrics_jsonl_golden() {
    let expected = concat!(
        "{\"kind\":\"counter\",\"name\":\"mts_drops_total\",",
        "\"labels\":{\"cause\":\"vf-unclaimed\"},\"value\":3}\n",
        "{\"kind\":\"counter\",\"name\":\"mts_tenant_rx_total\",",
        "\"labels\":{\"tenant\":\"0\"},\"value\":100}\n",
        "{\"kind\":\"counter\",\"name\":\"mts_tenant_rx_total\",",
        "\"labels\":{\"tenant\":\"1\"},\"value\":96}\n",
        "{\"kind\":\"gauge\",\"name\":\"mts_vswitch_ring_hwm\",",
        "\"labels\":{\"port\":\"2\",\"vswitch\":\"0\"},\"value\":5}\n",
        "{\"kind\":\"histogram\",\"name\":\"mts_e2e_latency_ns\",\"labels\":{},",
        "\"count\":4,\"min\":1000,\"p50\":1984,\"p90\":3968,\"p99\":3968,",
        "\"p999\":3968,\"max\":4000}\n",
    );
    assert_eq!(sample_metrics().render_jsonl(), expected);
}

#[test]
fn renders_are_idempotent() {
    let log = sample_trace();
    assert_eq!(log.to_chrome_trace(), log.to_chrome_trace());
    let m = sample_metrics();
    assert_eq!(m.render_prometheus(), m.render_prometheus());
}
