//! The SR-IOV NIC device: physical functions, privilege-checked
//! configuration, and the capacity model shared by its embedded switches.

use crate::model::NicModel;
use crate::switch::{Delivery, PfSwitch, SwitchCounters};
use crate::vf::{NicPort, VfConfig, VfId};
use mts_net::{Frame, MacAddr};
use mts_sim::{Dur, Link, Server, ServerDecision, Time};
use std::fmt;

/// Identifies a physical function (one per physical port).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PfId(pub u8);

impl fmt::Display for PfId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pf{}", self.0)
    }
}

/// Errors from the NIC configuration API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NicError {
    /// The physical function does not exist.
    NoSuchPf(PfId),
    /// The virtual function does not exist.
    NoSuchVf(PfId, VfId),
    /// The per-PF VF limit (64) was reached.
    VfLimit(PfId),
    /// A VM attempted a privileged operation on an untrusted VF.
    NotTrusted(PfId, VfId),
    /// The MAC address is already assigned on this PF and VLAN.
    DuplicateMac(MacAddr),
}

impl fmt::Display for NicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NicError::NoSuchPf(pf) => write!(f, "no such physical function {pf}"),
            NicError::NoSuchVf(pf, vf) => write!(f, "no such virtual function {pf}/{vf}"),
            NicError::VfLimit(pf) => write!(f, "VF limit (64) reached on {pf}"),
            NicError::NotTrusted(pf, vf) => {
                write!(f, "operation requires a trusted VF: {pf}/{vf}")
            }
            NicError::DuplicateMac(mac) => write!(f, "MAC {mac} already in use"),
        }
    }
}

impl std::error::Error for NicError {}

/// A dual-port (or n-port) SR-IOV NIC.
///
/// Each physical port has a physical function with its own embedded switch
/// and hairpin engine; all functions share one PCIe link to host memory.
///
/// # Examples
///
/// ```
/// use mts_nic::{SriovNic, NicModel, PfId, VfId, VfConfig, NicPort};
/// use mts_net::{Frame, MacAddr};
/// use std::net::Ipv4Addr;
///
/// let mut nic = SriovNic::new(2, NicModel::default());
/// let mac = MacAddr::local(1);
/// nic.create_vf(PfId(0), VfId(0), VfConfig::infrastructure(mac)).unwrap();
/// let f = Frame::udp_data(MacAddr::local(9), mac,
///     Ipv4Addr::new(10,0,0,1), Ipv4Addr::new(10,0,0,2), 1, 2, 10);
/// let out = nic.ingress(PfId(0), NicPort::Wire, f).unwrap();
/// assert_eq!(out.len(), 1);
/// assert_eq!(out[0].port, NicPort::Vf(VfId(0)));
/// ```
#[derive(Clone, Debug)]
pub struct SriovNic {
    model: NicModel,
    pfs: Vec<PfSwitch>,
    hairpins: Vec<Server>,
    pcie: Link,
    /// Accumulated embedded-switch (VEB) pipeline occupancy per PF —
    /// the hardware-side analogue of a CPU core's busy ledger. The
    /// runtime charges one switch latency per delivered frame; SLO
    /// attribution cross-checks its NIC-layer meter against this total.
    veb_busy: Vec<Dur>,
}

impl SriovNic {
    /// Creates a NIC with `ports` physical ports (at least one).
    pub fn new(ports: u8, model: NicModel) -> Self {
        let ports = ports.max(1) as usize;
        SriovNic {
            model,
            pfs: (0..ports).map(|_| PfSwitch::new()).collect(),
            hairpins: (0..ports).map(|_| model.hairpin_server()).collect(),
            pcie: model.pcie_link(),
            veb_busy: vec![Dur::ZERO; ports],
        }
    }

    /// Charges `d` of embedded-switch pipeline time to a PF's VEB ledger.
    pub fn note_veb_work(&mut self, pf: PfId, d: Dur) {
        if let Some(slot) = self.veb_busy.get_mut(pf.0 as usize) {
            *slot += d;
        }
    }

    /// Accumulated VEB pipeline occupancy for one PF.
    pub fn veb_busy(&self, pf: PfId) -> Dur {
        self.veb_busy
            .get(pf.0 as usize)
            .copied()
            .unwrap_or(Dur::ZERO)
    }

    /// Accumulated VEB pipeline occupancy across every PF.
    pub fn veb_busy_total(&self) -> Dur {
        let mut total = Dur::ZERO;
        for d in &self.veb_busy {
            total += *d;
        }
        total
    }

    /// Returns the NIC's timing/capacity model.
    pub fn model(&self) -> &NicModel {
        &self.model
    }

    /// Returns the number of physical ports.
    pub fn port_count(&self) -> usize {
        self.pfs.len()
    }

    /// Returns a PF's embedded switch.
    pub fn pf(&self, pf: PfId) -> Result<&PfSwitch, NicError> {
        self.pfs.get(pf.0 as usize).ok_or(NicError::NoSuchPf(pf))
    }

    /// Returns a PF's embedded switch mutably.
    pub fn pf_mut(&mut self, pf: PfId) -> Result<&mut PfSwitch, NicError> {
        self.pfs
            .get_mut(pf.0 as usize)
            .ok_or(NicError::NoSuchPf(pf))
    }

    /// Host-privileged: creates (or reconfigures) a VF.
    ///
    /// Rejects duplicate MACs within the same PF and VLAN — the NIC forwards
    /// on `(VLAN, MAC)`, so duplicates would be ambiguous.
    pub fn create_vf(&mut self, pf: PfId, vf: VfId, config: VfConfig) -> Result<(), NicError> {
        let sw = self.pf(pf)?;
        let clash = sw.vfs().any(|(id, cfg)| {
            id != vf && cfg.mac == config.mac && cfg.vlan.unwrap_or(0) == config.vlan.unwrap_or(0)
        });
        if clash {
            return Err(NicError::DuplicateMac(config.mac));
        }
        let sw = self.pf_mut(pf)?;
        if sw.configure_vf(vf, config) {
            Ok(())
        } else {
            Err(NicError::VfLimit(pf))
        }
    }

    /// Host-privileged: removes a VF.
    pub fn remove_vf(&mut self, pf: PfId, vf: VfId) -> Result<VfConfig, NicError> {
        self.pf_mut(pf)?
            .remove_vf(vf)
            .ok_or(NicError::NoSuchVf(pf, vf))
    }

    /// Host-privileged: changes a VF's VST VLAN.
    pub fn host_set_vf_vlan(
        &mut self,
        pf: PfId,
        vf: VfId,
        vlan: Option<u16>,
    ) -> Result<(), NicError> {
        let cfg = self
            .pf(pf)?
            .vf(vf)
            .cloned()
            .ok_or(NicError::NoSuchVf(pf, vf))?;
        let sw = self.pf_mut(pf)?;
        sw.configure_vf(vf, VfConfig { vlan, ..cfg });
        Ok(())
    }

    /// Host-privileged: toggles spoof checking on a VF.
    pub fn host_set_vf_spoofchk(&mut self, pf: PfId, vf: VfId, on: bool) -> Result<(), NicError> {
        let cfg = self
            .pf(pf)?
            .vf(vf)
            .cloned()
            .ok_or(NicError::NoSuchVf(pf, vf))?;
        let sw = self.pf_mut(pf)?;
        sw.configure_vf(
            vf,
            VfConfig {
                spoof_check: on,
                ..cfg
            },
        );
        Ok(())
    }

    /// VM-facing: attempts to change the VF MAC from inside the VM.
    ///
    /// Succeeds only on trusted VFs — tenants cannot re-address themselves,
    /// the restriction MTS relies on ("The NIC driver in the VMs in turn
    /// have restricted access to VF configuration", Sec. 3.1).
    pub fn vm_set_vf_mac(&mut self, pf: PfId, vf: VfId, mac: MacAddr) -> Result<(), NicError> {
        let cfg = self
            .pf(pf)?
            .vf(vf)
            .cloned()
            .ok_or(NicError::NoSuchVf(pf, vf))?;
        if !cfg.trusted {
            return Err(NicError::NotTrusted(pf, vf));
        }
        let sw = self.pf_mut(pf)?;
        sw.configure_vf(vf, VfConfig { mac, ..cfg });
        Ok(())
    }

    /// Switches one frame entering PF `pf` at `port`.
    pub fn ingress(
        &mut self,
        pf: PfId,
        port: NicPort,
        frame: Frame,
    ) -> Result<Vec<Delivery>, NicError> {
        Ok(self.pf_mut(pf)?.ingress(port, frame))
    }

    /// Switches one frame entering PF `pf` at `port`, appending deliveries
    /// to a caller-owned buffer (allocation-free fast path).
    pub fn ingress_into(
        &mut self,
        pf: PfId,
        port: NicPort,
        frame: Frame,
        out: &mut Vec<Delivery>,
    ) -> Result<(), NicError> {
        self.pf_mut(pf)?.ingress_into(port, frame, out);
        Ok(())
    }

    /// Charges one hairpin traversal on PF `pf` at `now`.
    ///
    /// Returns the completion time, or `None` when the hairpin engine's
    /// backlog bound is exceeded and the frame must be dropped.
    pub fn admit_hairpin(&mut self, pf: PfId, now: Time) -> Option<Time> {
        match self.hairpins.get_mut(pf.0 as usize)?.offer(now) {
            ServerDecision::Done(t) => Some(t),
            ServerDecision::Dropped => None,
        }
    }

    /// Charges one PCIe DMA crossing of `bytes` at `now`; returns arrival.
    pub fn dma(&mut self, now: Time, bytes: u64) -> Time {
        self.pcie.transmit(now, bytes)
    }

    /// Read-only view of the shared PCIe link (diagnostics).
    pub fn pcie(&self) -> &Link {
        &self.pcie
    }

    /// Hairpin drops accumulated on a PF.
    pub fn hairpin_drops(&self, pf: PfId) -> u64 {
        self.hairpins
            .get(pf.0 as usize)
            .map(|s| s.dropped())
            .unwrap_or(0)
    }

    /// Hairpin traversals served on a PF.
    pub fn hairpin_served(&self, pf: PfId) -> u64 {
        self.hairpins
            .get(pf.0 as usize)
            .map(|s| s.served())
            .unwrap_or(0)
    }

    /// Aggregated switch counters across all PFs.
    pub fn counters(&self) -> SwitchCounters {
        let mut total = SwitchCounters::default();
        for sw in &self.pfs {
            let c = sw.counters();
            total.forwarded += c.forwarded;
            total.flooded += c.flooded;
            total.flood_copies += c.flood_copies;
            total.dropped_spoof += c.dropped_spoof;
            total.dropped_filter += c.dropped_filter;
            total.dropped_vlan += c.dropped_vlan;
            total.poison_attempts += c.poison_attempts;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn frame(src: MacAddr, dst: MacAddr) -> Frame {
        Frame::udp_data(
            src,
            dst,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1,
            2,
            20,
        )
    }

    #[test]
    fn pf_bounds_are_checked() {
        let mut nic = SriovNic::new(2, NicModel::default());
        assert!(matches!(nic.pf(PfId(2)), Err(NicError::NoSuchPf(_))));
        assert!(nic
            .create_vf(
                PfId(5),
                VfId(0),
                VfConfig::infrastructure(MacAddr::local(1))
            )
            .is_err());
        assert!(nic.pf(PfId(1)).is_ok());
    }

    #[test]
    fn duplicate_mac_in_same_vlan_rejected() {
        let mut nic = SriovNic::new(1, NicModel::default());
        let mac = MacAddr::local(7);
        nic.create_vf(PfId(0), VfId(0), VfConfig::tenant(mac, 1))
            .unwrap();
        let err = nic.create_vf(PfId(0), VfId(1), VfConfig::tenant(mac, 1));
        assert_eq!(err, Err(NicError::DuplicateMac(mac)));
        // Same MAC in a different VLAN is allowed (distinct forwarding key).
        nic.create_vf(PfId(0), VfId(1), VfConfig::tenant(mac, 2))
            .unwrap();
        // Reconfiguring the same VF with its own MAC is allowed.
        nic.create_vf(PfId(0), VfId(0), VfConfig::tenant(mac, 1))
            .unwrap();
    }

    #[test]
    fn untrusted_vm_cannot_change_mac() {
        let mut nic = SriovNic::new(1, NicModel::default());
        nic.create_vf(PfId(0), VfId(0), VfConfig::tenant(MacAddr::local(1), 1))
            .unwrap();
        let err = nic.vm_set_vf_mac(PfId(0), VfId(0), MacAddr::local(99));
        assert!(matches!(err, Err(NicError::NotTrusted(_, _))));
        // Host grants trust; the VM may then re-address.
        let cfg = nic.pf(PfId(0)).unwrap().vf(VfId(0)).cloned().unwrap();
        nic.pf_mut(PfId(0)).unwrap().configure_vf(
            VfId(0),
            VfConfig {
                trusted: true,
                ..cfg
            },
        );
        nic.vm_set_vf_mac(PfId(0), VfId(0), MacAddr::local(99))
            .unwrap();
        assert_eq!(
            nic.pf(PfId(0)).unwrap().vf(VfId(0)).unwrap().mac,
            MacAddr::local(99)
        );
    }

    #[test]
    fn host_reconfiguration_roundtrip() {
        let mut nic = SriovNic::new(1, NicModel::default());
        nic.create_vf(PfId(0), VfId(0), VfConfig::tenant(MacAddr::local(1), 1))
            .unwrap();
        nic.host_set_vf_vlan(PfId(0), VfId(0), Some(9)).unwrap();
        assert_eq!(nic.pf(PfId(0)).unwrap().vf(VfId(0)).unwrap().vlan, Some(9));
        nic.host_set_vf_spoofchk(PfId(0), VfId(0), false).unwrap();
        assert!(!nic.pf(PfId(0)).unwrap().vf(VfId(0)).unwrap().spoof_check);
        let cfg = nic.remove_vf(PfId(0), VfId(0)).unwrap();
        assert_eq!(cfg.vlan, Some(9));
        assert!(matches!(
            nic.remove_vf(PfId(0), VfId(0)),
            Err(NicError::NoSuchVf(_, _))
        ));
    }

    #[test]
    fn hairpin_budget_is_per_pf() {
        let mut nic = SriovNic::new(2, NicModel::default());
        // Saturate PF0's hairpin engine.
        let mut drops0 = 0;
        for _ in 0..10_000 {
            if nic.admit_hairpin(PfId(0), Time::ZERO).is_none() {
                drops0 += 1;
            }
        }
        assert!(drops0 > 0);
        assert_eq!(nic.hairpin_drops(PfId(0)), drops0);
        // PF1 is unaffected.
        assert!(nic.admit_hairpin(PfId(1), Time::ZERO).is_some());
        assert_eq!(nic.hairpin_drops(PfId(1)), 0);
    }

    #[test]
    fn dma_is_fast_but_not_free() {
        let mut nic = SriovNic::new(1, NicModel::default());
        let t = nic.dma(Time::ZERO, 1500);
        // 1500B over 50Gbps = 240ns + 450ns latency.
        assert_eq!(t, Time::from_nanos(240 + 450));
    }

    #[test]
    fn counters_aggregate_across_pfs() {
        let mut nic = SriovNic::new(2, NicModel::default());
        let a = MacAddr::local(1);
        let b = MacAddr::local(2);
        nic.create_vf(PfId(0), VfId(0), VfConfig::infrastructure(a))
            .unwrap();
        nic.create_vf(PfId(1), VfId(0), VfConfig::infrastructure(b))
            .unwrap();
        nic.ingress(PfId(0), NicPort::Wire, frame(MacAddr::local(9), a))
            .unwrap();
        nic.ingress(PfId(1), NicPort::Wire, frame(MacAddr::local(9), b))
            .unwrap();
        assert_eq!(nic.counters().forwarded, 2);
    }
}
