//! NIC timing and capacity parameters.
//!
//! These constants embody the hardware behaviour the evaluation depends on;
//! `mts-core` charges them to simulated time. Values are calibrated to a
//! 10G Mellanox ConnectX-4-class NIC on PCIe 3.0 x8 (see DESIGN.md §3).

use mts_sim::{Dur, Link, Server};
use serde::{Deserialize, Serialize};

/// Timing/capacity parameters of the SR-IOV NIC.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NicModel {
    /// Cut-through latency of the embedded switch per traversal.
    pub switch_latency: Dur,
    /// Latency of one PCIe DMA crossing (NIC ↔ VM memory), excluding
    /// serialization.
    pub pcie_latency: Dur,
    /// Effective usable PCIe bandwidth per direction, bits/second. A
    /// typical x8 PCIe 3.0 NIC has ≈50 Gbps usable bidirectional
    /// (Neugebauer et al., SIGCOMM'18, cited in Sec. 6).
    pub pcie_bw_bps: u64,
    /// VF↔VF hairpin engine rate, traversals/second per PF. This is the
    /// saturation mechanism for MTS's NIC-bounced traffic (Sec. 4.1).
    pub hairpin_rate_pps: u64,
    /// Backlog bound of the hairpin engine before it tail-drops.
    pub hairpin_backlog: Dur,
    /// Wire bandwidth of each physical port, bits/second.
    pub wire_bw_bps: u64,
    /// Wire propagation delay (short optical link).
    pub wire_propagation: Dur,
}

impl Default for NicModel {
    fn default() -> Self {
        NicModel {
            switch_latency: Dur::nanos(300),
            pcie_latency: Dur::nanos(450),
            pcie_bw_bps: 50_000_000_000,
            hairpin_rate_pps: 2_300_000,
            hairpin_backlog: Dur::micros(200),
            wire_bw_bps: 10_000_000_000,
            wire_propagation: Dur::nanos(50),
        }
    }
}

impl NicModel {
    /// Builds the shared PCIe link resource for this NIC.
    pub fn pcie_link(&self) -> Link {
        Link::new(self.pcie_bw_bps, self.pcie_latency)
    }

    /// Builds one PF's hairpin engine.
    pub fn hairpin_server(&self) -> Server {
        Server::new(self.hairpin_rate_pps, self.hairpin_backlog)
    }

    /// Builds one physical port's wire link.
    pub fn wire_link(&self) -> Link {
        Link::new(self.wire_bw_bps, self.wire_propagation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mts_sim::{ServerDecision, Time};

    #[test]
    fn default_model_is_10g_pcie3() {
        let m = NicModel::default();
        assert_eq!(m.wire_bw_bps, 10_000_000_000);
        assert!(m.pcie_bw_bps > m.wire_bw_bps);
        assert!(m.hairpin_rate_pps < 14_880_952); // below 10G 64B line rate
    }

    #[test]
    fn hairpin_server_caps_at_the_configured_rate() {
        let m = NicModel::default();
        let mut s = m.hairpin_server();
        // Offer far more than a second of traversals instantly; the backlog
        // bound kicks in quickly.
        let (_, drops) = s.offer_batch(Time::ZERO, 10_000);
        assert!(drops > 0);
        // Service time matches the configured rate.
        assert_eq!(s.service_time(), Dur::nanos(1_000_000_000 / 2_300_000));
        match s.offer(Time::from_nanos(10_000_000_000)) {
            ServerDecision::Done(_) => {}
            ServerDecision::Dropped => panic!("server must accept after idle"),
        }
    }

    #[test]
    fn wire_link_serializes_at_line_rate() {
        let m = NicModel::default();
        let l = m.wire_link();
        // 64B at 10G = 51.2ns -> 14.88 Mpps with preamble ignored.
        assert_eq!(l.serialization(64), Dur::nanos(51));
    }
}
