//! Virtual functions and NIC switch ports.

use mts_net::MacAddr;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a virtual function within one physical function.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct VfId(pub u8);

impl fmt::Display for VfId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vf{}", self.0)
    }
}

/// A port of the embedded NIC switch.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum NicPort {
    /// The physical fabric port (the wire).
    Wire,
    /// The physical function attached to the host OS.
    Pf,
    /// A virtual function attached to a VM.
    Vf(VfId),
}

impl NicPort {
    /// Returns whether this port is a VF.
    pub fn is_vf(self) -> bool {
        matches!(self, NicPort::Vf(_))
    }
}

impl fmt::Display for NicPort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NicPort::Wire => write!(f, "wire"),
            NicPort::Pf => write!(f, "pf"),
            NicPort::Vf(id) => write!(f, "{id}"),
        }
    }
}

/// Host-side configuration of a virtual function.
///
/// Only the PF driver (the host) may mutate this — see
/// [`crate::nic::SriovNic`] for the privilege-checked API.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct VfConfig {
    /// The MAC address assigned by the host.
    pub mac: MacAddr,
    /// VST VLAN id: frames from the VF are tagged with it, frames to the VF
    /// have it stripped. `None` means the VF carries untagged traffic.
    pub vlan: Option<u16>,
    /// When set, frames whose source MAC differs from `mac` are dropped at
    /// VF ingress ("source MAC address spoofing prevention must be enabled
    /// on all tenant VMs' VFs", Sec. 3.2).
    pub spoof_check: bool,
    /// Trusted VFs may override their MAC from inside the VM (off for
    /// tenants).
    pub trusted: bool,
}

impl VfConfig {
    /// A tenant-grade config: spoof-checked, untrusted.
    pub fn tenant(mac: MacAddr, vlan: u16) -> Self {
        VfConfig {
            mac,
            vlan: Some(vlan),
            spoof_check: true,
            trusted: false,
        }
    }

    /// An infrastructure-grade config (vswitch In/Out VFs): untagged and
    /// *not* spoof-checked — the vswitch VM forwards frames that carry
    /// tenant/external source MACs (the paper enables spoofing prevention
    /// "on all tenant VMs' VFs" only).
    pub fn infrastructure(mac: MacAddr) -> Self {
        VfConfig {
            mac,
            vlan: None,
            spoof_check: false,
            trusted: false,
        }
    }

    /// A gateway-VF config (vswitch VM side of a tenant VLAN): tagged but
    /// not spoof-checked, for the same reason as [`VfConfig::infrastructure`].
    pub fn gateway(mac: MacAddr, vlan: u16) -> Self {
        VfConfig {
            mac,
            vlan: Some(vlan),
            spoof_check: false,
            trusted: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(VfId(3).to_string(), "vf3");
        assert_eq!(NicPort::Wire.to_string(), "wire");
        assert_eq!(NicPort::Pf.to_string(), "pf");
        assert_eq!(NicPort::Vf(VfId(9)).to_string(), "vf9");
    }

    #[test]
    fn port_classification() {
        assert!(NicPort::Vf(VfId(0)).is_vf());
        assert!(!NicPort::Wire.is_vf());
        assert!(!NicPort::Pf.is_vf());
    }

    #[test]
    fn config_presets() {
        let t = VfConfig::tenant(MacAddr::local(1), 100);
        assert_eq!(t.vlan, Some(100));
        assert!(t.spoof_check);
        assert!(!t.trusted);
        let i = VfConfig::infrastructure(MacAddr::local(2));
        assert_eq!(i.vlan, None);
        assert!(!i.spoof_check);
        let g = VfConfig::gateway(MacAddr::local(3), 7);
        assert_eq!(g.vlan, Some(7));
        assert!(!g.spoof_check);
    }
}
