//! Wildcard security filters applied by the embedded NIC switch.
//!
//! The paper's system-support section calls for "flow-based wildcard
//! filters … applied in the NIC for additional security, e.g., to drop
//! packets not destined to the vswitch compartment, to prevent the Host
//! from receiving packets from the tenant VMs" (Sec. 3.2). These filters
//! match on the ingress port (exactly or by class), MAC addresses, VLAN and
//! EtherType, in priority order, before forwarding.

use crate::vf::{NicPort, VfId};
use mts_net::{EtherType, Frame, MacAddr};
use serde::{Deserialize, Serialize};

/// What a matching filter does with the frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum FilterAction {
    /// Let the frame continue to forwarding.
    Allow,
    /// Silently drop the frame.
    Drop,
}

/// Matches the ingress port of a frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum PortClass {
    /// Any port.
    Any,
    /// Only the wire.
    Wire,
    /// Only the PF.
    Pf,
    /// Any VF.
    AnyVf,
    /// One specific VF.
    Vf(VfId),
}

impl PortClass {
    /// Returns whether `port` belongs to this class.
    pub fn matches(self, port: NicPort) -> bool {
        match (self, port) {
            (PortClass::Any, _) => true,
            (PortClass::Wire, NicPort::Wire) => true,
            (PortClass::Pf, NicPort::Pf) => true,
            (PortClass::AnyVf, NicPort::Vf(_)) => true,
            (PortClass::Vf(want), NicPort::Vf(got)) => want == got,
            _ => false,
        }
    }
}

/// One wildcard filter rule. Unset fields match anything.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterRule {
    /// Higher priorities are evaluated first.
    pub priority: u16,
    /// Ingress port constraint.
    pub from: PortClass,
    /// Source MAC constraint.
    pub src_mac: Option<MacAddr>,
    /// Destination MAC constraint.
    pub dst_mac: Option<MacAddr>,
    /// VLAN id constraint (as seen *inside* the switch, after VST tagging).
    pub vlan: Option<u16>,
    /// EtherType constraint.
    pub ethertype: Option<EtherType>,
    /// The action on match.
    pub action: FilterAction,
}

impl FilterRule {
    /// A rule that drops everything from a port class (lowest priority 0).
    pub fn drop_all_from(from: PortClass) -> Self {
        FilterRule {
            priority: 0,
            from,
            src_mac: None,
            dst_mac: None,
            vlan: None,
            ethertype: None,
            action: FilterAction::Drop,
        }
    }

    /// An allow rule for traffic from `from` to a specific destination MAC.
    pub fn allow_to(from: PortClass, dst_mac: MacAddr, priority: u16) -> Self {
        FilterRule {
            priority,
            from,
            src_mac: None,
            dst_mac: Some(dst_mac),
            vlan: None,
            ethertype: None,
            action: FilterAction::Allow,
        }
    }

    /// Returns whether this rule matches a frame as seen inside the switch.
    ///
    /// `vlan` is the frame's effective VLAN (0 when untagged).
    pub fn matches(&self, from: NicPort, frame: &Frame, vlan: u16) -> bool {
        self.from.matches(from)
            && self.src_mac.is_none_or(|m| m == frame.src)
            && self.dst_mac.is_none_or(|m| m == frame.dst)
            && self.vlan.is_none_or(|v| v == vlan)
            && self.ethertype.is_none_or(|e| e == frame.ethertype())
    }
}

/// Evaluates filters in priority order; returns the first match's action.
///
/// Ties between matching rules of equal priority break towards the
/// *earlier-installed* rule, deterministically — hardware TCAMs resolve
/// equal-priority overlaps by slot order, and the static analyzer
/// (`mts-isocheck`) models exactly this order. (`max_by_key` would return
/// the *last* maximal element and silently flip the winner on ties.)
///
/// No match means [`FilterAction::Allow`] (filters are an extra guard, not
/// the primary isolation mechanism).
pub fn evaluate(rules: &[FilterRule], from: NicPort, frame: &Frame, vlan: u16) -> FilterAction {
    let mut best: Option<&FilterRule> = None;
    for r in rules {
        if r.matches(from, frame, vlan) && best.is_none_or(|b| r.priority > b.priority) {
            best = Some(r);
        }
    }
    best.map(|r| r.action).unwrap_or(FilterAction::Allow)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn frame(src: MacAddr, dst: MacAddr) -> Frame {
        Frame::udp_data(
            src,
            dst,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1,
            2,
            10,
        )
    }

    #[test]
    fn port_classes_match_expected_ports() {
        assert!(PortClass::Any.matches(NicPort::Wire));
        assert!(PortClass::AnyVf.matches(NicPort::Vf(VfId(3))));
        assert!(!PortClass::AnyVf.matches(NicPort::Pf));
        assert!(PortClass::Vf(VfId(3)).matches(NicPort::Vf(VfId(3))));
        assert!(!PortClass::Vf(VfId(3)).matches(NicPort::Vf(VfId(4))));
        assert!(PortClass::Pf.matches(NicPort::Pf));
        assert!(!PortClass::Wire.matches(NicPort::Pf));
    }

    #[test]
    fn default_is_allow() {
        let f = frame(MacAddr::local(1), MacAddr::local(2));
        assert_eq!(evaluate(&[], NicPort::Wire, &f, 0), FilterAction::Allow);
    }

    #[test]
    fn higher_priority_wins() {
        let gw = MacAddr::local(9);
        let rules = vec![
            FilterRule::drop_all_from(PortClass::AnyVf),
            FilterRule::allow_to(PortClass::AnyVf, gw, 10),
        ];
        let to_gw = frame(MacAddr::local(1), gw);
        let to_other = frame(MacAddr::local(1), MacAddr::local(2));
        assert_eq!(
            evaluate(&rules, NicPort::Vf(VfId(0)), &to_gw, 1),
            FilterAction::Allow
        );
        assert_eq!(
            evaluate(&rules, NicPort::Vf(VfId(0)), &to_other, 1),
            FilterAction::Drop
        );
        // Frames from the wire are untouched by the VF-scoped rules.
        assert_eq!(
            evaluate(&rules, NicPort::Wire, &to_other, 0),
            FilterAction::Allow
        );
    }

    #[test]
    fn equal_priority_tie_breaks_to_first_installed() {
        let dst = MacAddr::local(9);
        let f = frame(MacAddr::local(1), dst);
        let allow = FilterRule::allow_to(PortClass::AnyVf, dst, 10);
        let mut drop = FilterRule::drop_all_from(PortClass::AnyVf);
        drop.priority = 10;
        // Same priority, overlapping match: the earlier-installed rule wins.
        assert_eq!(
            evaluate(&[allow.clone(), drop.clone()], NicPort::Vf(VfId(0)), &f, 1),
            FilterAction::Allow
        );
        assert_eq!(
            evaluate(&[drop, allow], NicPort::Vf(VfId(0)), &f, 1),
            FilterAction::Drop
        );
    }

    #[test]
    fn vlan_and_ethertype_constraints() {
        let mut r = FilterRule::drop_all_from(PortClass::Any);
        r.vlan = Some(7);
        r.ethertype = Some(EtherType::Ipv4);
        let f = frame(MacAddr::local(1), MacAddr::local(2));
        assert!(r.matches(NicPort::Wire, &f, 7));
        assert!(!r.matches(NicPort::Wire, &f, 8));
        r.ethertype = Some(EtherType::Arp);
        assert!(!r.matches(NicPort::Wire, &f, 7));
    }
}
