//! The embedded per-PF L2 switch (IEEE 802.1Qbg Virtual Ethernet Bridging).

use crate::filter::{evaluate, FilterAction, FilterRule};
use crate::vf::{NicPort, VfConfig, VfId};
use mts_net::{Frame, MacAddr};
use mts_sim::FastHashMap;
use serde::{Deserialize, Serialize};

/// Maximum virtual functions per physical function (PCI-SIG SR-IOV, and the
/// paper: "the current standard allows each SR-IOV device to have up to 64
/// VFs per PF").
pub const MAX_VFS_PER_PF: usize = 64;

/// A frame delivered out of the switch.
#[derive(Clone, Debug)]
pub struct Delivery {
    /// The egress port.
    pub port: NicPort,
    /// The frame, after any VST tag manipulation.
    pub frame: Frame,
    /// Whether this crossing is a VF-to-VF *hairpin* (charged against the
    /// NIC's hairpin capacity by the runtime).
    pub hairpin: bool,
}

/// Forwarding and drop counters of one embedded switch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwitchCounters {
    /// Frames forwarded to exactly one port.
    pub forwarded: u64,
    /// Flood events (unknown unicast or broadcast).
    pub flooded: u64,
    /// Copies emitted by flooding.
    pub flood_copies: u64,
    /// Frames dropped by MAC anti-spoofing.
    pub dropped_spoof: u64,
    /// Frames dropped by security filters.
    pub dropped_filter: u64,
    /// Frames dropped because a VM sent a tagged frame on a VST VF, or a
    /// tagged frame had no member ports.
    pub dropped_vlan: u64,
    /// Learning attempts that tried to override a static (configured) entry.
    pub poison_attempts: u64,
}

/// A MAC table entry: static entries come from VF configuration and cannot
/// be displaced by learning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Entry {
    Static(NicPort),
    Learned(NicPort),
}

impl Entry {
    fn port(self) -> NicPort {
        match self {
            Entry::Static(p) | Entry::Learned(p) => p,
        }
    }
}

/// The embedded L2 switch of one physical function.
///
/// Forwarding model: frames are switched on `(VLAN, destination MAC)`.
/// The wire port is a trunk (member of every VLAN); the PF and untagged VFs
/// are members of VLAN 0; a VF configured with a VST VLAN id is a member of
/// exactly that VLAN, with tagging on ingress and stripping on egress.
#[derive(Clone, Debug, Default)]
pub struct PfSwitch {
    /// Dense per-VF registers, indexed by `VfId`: a VF lookup on the
    /// per-frame path is one bounds check, not a tree walk. Ascending-id
    /// iteration (the old `BTreeMap` order, which flood delivery order
    /// depends on) falls out of the index.
    vfs: Vec<Option<VfConfig>>,
    vf_count: usize,
    table: FastHashMap<(u16, u64), Entry>,
    filters: Vec<FilterRule>,
    counters: SwitchCounters,
}

impl PfSwitch {
    /// Creates an empty switch with no VFs and no filters.
    pub fn new() -> Self {
        PfSwitch::default()
    }

    /// Returns the forwarding counters.
    pub fn counters(&self) -> SwitchCounters {
        self.counters
    }

    /// Returns the number of configured VFs.
    pub fn vf_count(&self) -> usize {
        self.vf_count
    }

    /// Returns a VF's configuration.
    pub fn vf(&self, id: VfId) -> Option<&VfConfig> {
        self.vfs.get(usize::from(id.0)).and_then(Option::as_ref)
    }

    /// Iterates over configured VFs in ascending id order.
    pub fn vfs(&self) -> impl Iterator<Item = (VfId, &VfConfig)> {
        self.vfs
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|cfg| (VfId(i as u8), cfg)))
    }

    /// Installs or replaces a VF configuration (PF-driver privilege).
    ///
    /// Installs a static MAC entry for the VF in its VLAN. Returns `false`
    /// when the 64-VF limit would be exceeded.
    pub fn configure_vf(&mut self, id: VfId, config: VfConfig) -> bool {
        let idx = usize::from(id.0);
        if idx >= self.vfs.len() {
            self.vfs.resize(idx + 1, None);
        }
        if self.vfs[idx].is_none() && self.vf_count >= MAX_VFS_PER_PF {
            return false;
        }
        // Remove the old static entry if the VF is being reconfigured.
        match &self.vfs[idx] {
            Some(old) => {
                self.table
                    .remove(&(old.vlan.unwrap_or(0), old.mac.as_u64()));
            }
            None => self.vf_count += 1,
        }
        self.table.insert(
            (config.vlan.unwrap_or(0), config.mac.as_u64()),
            Entry::Static(NicPort::Vf(id)),
        );
        self.vfs[idx] = Some(config);
        true
    }

    /// Removes a VF and its static MAC entry.
    pub fn remove_vf(&mut self, id: VfId) -> Option<VfConfig> {
        let cfg = self.vfs.get_mut(usize::from(id.0))?.take()?;
        self.vf_count -= 1;
        self.table
            .remove(&(cfg.vlan.unwrap_or(0), cfg.mac.as_u64()));
        // Also purge any entries learned towards the VF.
        self.table.retain(|_, e| e.port() != NicPort::Vf(id));
        Some(cfg)
    }

    /// Replaces the filter set.
    pub fn set_filters(&mut self, filters: Vec<FilterRule>) {
        self.filters = filters;
    }

    /// Appends one filter rule.
    pub fn add_filter(&mut self, rule: FilterRule) {
        self.filters.push(rule);
    }

    /// Returns the installed filters.
    pub fn filters(&self) -> &[FilterRule] {
        &self.filters
    }

    /// Looks up the port a `(vlan, mac)` pair maps to, if any.
    pub fn lookup(&self, vlan: u16, mac: MacAddr) -> Option<NicPort> {
        self.table.get(&(vlan, mac.as_u64())).map(|e| e.port())
    }

    /// Installs a static MAC entry (operator-provisioned, e.g. the host
    /// PF's own address or known external next hops on the wire).
    pub fn install_static_mac(&mut self, vlan: u16, mac: MacAddr, port: NicPort) {
        self.table.insert((vlan, mac.as_u64()), Entry::Static(port));
    }

    /// Removes a static MAC entry, returning whether one was present.
    /// Learned entries under the same key are left alone (use
    /// [`PfSwitch::flush_table`] for those).
    pub fn remove_static_mac(&mut self, vlan: u16, mac: MacAddr) -> bool {
        match self.table.get(&(vlan, mac.as_u64())) {
            Some(Entry::Static(_)) => {
                self.table.remove(&(vlan, mac.as_u64()));
                true
            }
            _ => false,
        }
    }

    /// Flushes the forwarding table: every learned entry *and* every
    /// operator-provisioned static is lost, as after a firmware reset or an
    /// injected VEB fault. Entries derived from VF configurations survive —
    /// they live in per-VF registers and are re-populated by the hardware —
    /// so VF-addressed unicast keeps working while wire-side destinations
    /// degrade to unknown-unicast flooding until the controller reconciles.
    pub fn flush_table(&mut self) {
        self.table.clear();
        // Collect first: the table borrow must end before reinsertion.
        let vf_entries: Vec<(u16, u64, VfId)> = self
            .vfs()
            .map(|(id, cfg)| (cfg.vlan.unwrap_or(0), cfg.mac.as_u64(), id))
            .collect();
        for (vlan, mac, id) in vf_entries {
            self.table
                .insert((vlan, mac), Entry::Static(NicPort::Vf(id)));
        }
    }

    /// Returns all *static* (configured, non-learned) MAC table entries as
    /// `(vlan, mac, port)` triples, sorted by `(vlan, mac)` so iteration is
    /// deterministic. This is the configured forwarding state the
    /// `mts-isocheck` static analyzer reasons over; learned entries are
    /// runtime state and deliberately excluded.
    pub fn static_macs(&self) -> Vec<(u16, MacAddr, NicPort)> {
        let mut out: Vec<(u16, MacAddr, NicPort)> = self
            .table
            // lint:allow(hashmap-iter): collected and sorted below before exposure
            .iter()
            .filter_map(|((vlan, mac), e)| match e {
                Entry::Static(p) => Some((*vlan, MacAddr::from_u64(*mac), *p)),
                Entry::Learned(_) => None,
            })
            .collect();
        out.sort_by_key(|(vlan, mac, _)| (*vlan, mac.as_u64()));
        out
    }

    /// Switches one frame entering at `from`; returns zero or more deliveries.
    ///
    /// Convenience wrapper over [`PfSwitch::ingress_into`] for callers that
    /// don't keep a scratch buffer (tests, one-shot attack probes).
    pub fn ingress(&mut self, from: NicPort, frame: Frame) -> Vec<Delivery> {
        let mut out = Vec::new();
        self.ingress_into(from, frame, &mut out);
        out
    }

    /// Switches one frame entering at `from`, appending deliveries to `out`.
    ///
    /// This is the pure forwarding decision; timing (PCIe DMA, hairpin
    /// capacity) is charged by the runtime using the [`Delivery::hairpin`]
    /// flag and the frame sizes. Taking the output buffer from the caller
    /// keeps the per-frame fast path allocation-free: the runtime reuses
    /// one scratch `Vec` across every ingress.
    pub fn ingress_into(&mut self, from: NicPort, frame: Frame, out: &mut Vec<Delivery>) {
        // Step 1: VST ingress processing and spoof checking for VFs.
        let mut frame = frame;
        if let NicPort::Vf(id) = from {
            let Some(cfg) = self.vf(id) else {
                // Frames from unconfigured VFs cannot exist; drop defensively.
                self.counters.dropped_vlan += 1;
                return;
            };
            if cfg.spoof_check && frame.src != cfg.mac {
                self.counters.dropped_spoof += 1;
                return;
            }
            if let Some(vid) = cfg.vlan {
                if frame.vlan.is_some() {
                    // VST mode: tagged frames from the VM are not allowed.
                    self.counters.dropped_vlan += 1;
                    return;
                }
                frame = frame.with_vlan(vid);
            }
        }
        let vlan = frame.vlan.map(|t| t.vid).unwrap_or(0);

        // Step 2: security filters.
        if evaluate(&self.filters, from, &frame, vlan) == FilterAction::Drop {
            self.counters.dropped_filter += 1;
            return;
        }

        // Step 3: MAC learning (source address towards the ingress port).
        self.learn(vlan, frame.src, from);

        // Step 4: forwarding decision.
        if frame.dst.is_multicast() {
            return self.flood_into(from, vlan, frame, out);
        }
        match self.lookup(vlan, frame.dst) {
            Some(port) if port == from => {
                // Destination lives on the ingress port: nothing to do.
            }
            Some(port) => {
                self.counters.forwarded += 1;
                let d = self.deliver(from, port, frame);
                out.push(d);
            }
            None => self.flood_into(from, vlan, frame, out),
        }
    }

    fn learn(&mut self, vlan: u16, src: MacAddr, port: NicPort) {
        if src.is_multicast() {
            return;
        }
        let key = (vlan, src.as_u64());
        match self.table.get(&key) {
            Some(Entry::Static(existing)) if *existing != port => {
                // A spoofed or misconfigured source tried to displace a
                // configured address; refuse and record.
                self.counters.poison_attempts += 1;
            }
            Some(Entry::Static(_)) => {}
            _ => {
                self.table.insert(key, Entry::Learned(port));
            }
        }
    }

    /// Floods within `vlan` to every member port except the ingress port,
    /// appending to `out`. Member order is wire, PF (VLAN 0 only), then VFs
    /// ascending — delivery order is part of the deterministic contract.
    fn flood_into(&mut self, from: NicPort, vlan: u16, frame: Frame, out: &mut Vec<Delivery>) {
        // The PF's host interface is not promiscuous: it receives frames
        // matching its own MAC filter plus broadcast/multicast, never
        // flooded unknown unicast.
        let unicast = frame.dst.is_unicast();
        let start = out.len();
        if from != NicPort::Wire {
            let d = self.deliver(from, NicPort::Wire, frame.clone());
            out.push(d);
        }
        if vlan == 0 && from != NicPort::Pf && !unicast {
            let d = self.deliver(from, NicPort::Pf, frame.clone());
            out.push(d);
        }
        for i in 0..self.vfs.len() {
            let Some(cfg) = &self.vfs[i] else { continue };
            let member = match cfg.vlan {
                Some(v) => v == vlan,
                None => vlan == 0,
            };
            let port = NicPort::Vf(VfId(i as u8));
            if member && port != from {
                let d = self.deliver(from, port, frame.clone());
                out.push(d);
            }
        }
        let copies = (out.len() - start) as u64;
        if copies == 0 {
            self.counters.dropped_vlan += 1;
        } else {
            self.counters.flooded += 1;
            self.counters.flood_copies += copies;
        }
    }

    fn deliver(&self, from: NicPort, port: NicPort, mut frame: Frame) -> Delivery {
        // VST egress: strip the tag towards VLAN-configured VFs.
        if let NicPort::Vf(id) = port {
            if let Some(cfg) = self.vf(id) {
                if cfg.vlan.is_some() {
                    frame.vlan = None;
                }
            }
        }
        Delivery {
            port,
            frame,
            hairpin: from.is_vf() && port.is_vf(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn frame(src: MacAddr, dst: MacAddr) -> Frame {
        Frame::udp_data(
            src,
            dst,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1,
            2,
            20,
        )
    }

    /// Builds the canonical MTS single-tenant layout from Fig. 2/3:
    /// VF0 = vswitch In/Out (untagged), VF1 = Gw VF (VLAN 1),
    /// VF2 = tenant T VF (VLAN 1).
    fn mts_layout() -> (PfSwitch, MacAddr, MacAddr, MacAddr) {
        let mut sw = PfSwitch::new();
        let inout = MacAddr::local(0x10);
        let gw = MacAddr::local(0x11);
        let tenant = MacAddr::local(0x12);
        assert!(sw.configure_vf(VfId(0), VfConfig::infrastructure(inout)));
        assert!(sw.configure_vf(VfId(1), VfConfig::tenant(gw, 1)));
        assert!(sw.configure_vf(VfId(2), VfConfig::tenant(tenant, 1)));
        (sw, inout, gw, tenant)
    }

    #[test]
    fn wire_to_inout_vf_is_untagged_unicast() {
        let (mut sw, inout, _, _) = mts_layout();
        let ext = MacAddr::local(0xee);
        let out = sw.ingress(NicPort::Wire, frame(ext, inout));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].port, NicPort::Vf(VfId(0)));
        assert!(out[0].frame.vlan.is_none());
        assert!(!out[0].hairpin);
    }

    #[test]
    fn gw_to_tenant_is_a_hairpin_within_the_vlan() {
        let (mut sw, _, gw, tenant) = mts_layout();
        // The vswitch VM emits via the Gw VF (VF1) towards the tenant MAC.
        let out = sw.ingress(NicPort::Vf(VfId(1)), frame(gw, tenant));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].port, NicPort::Vf(VfId(2)));
        assert!(out[0].hairpin, "VF-to-VF must be flagged as hairpin");
        // VST: tag added on ingress, stripped before the tenant sees it.
        assert!(out[0].frame.vlan.is_none());
    }

    #[test]
    fn vlan_isolation_blocks_cross_tenant_unicast() {
        let (mut sw, _, _, _) = mts_layout();
        // Second tenant on VLAN 2.
        let t2 = MacAddr::local(0x22);
        sw.configure_vf(VfId(3), VfConfig::tenant(t2, 2));
        let t1 = MacAddr::local(0x12);
        // Tenant 1 (VLAN 1) tries to reach tenant 2's MAC directly: the
        // lookup happens in VLAN 1 where t2 does not exist, so the frame
        // floods within VLAN 1 only — never to VF3.
        let out = sw.ingress(NicPort::Vf(VfId(2)), frame(t1, t2));
        assert!(out.iter().all(|d| d.port != NicPort::Vf(VfId(3))));
    }

    #[test]
    fn spoofed_source_mac_is_dropped() {
        let (mut sw, _, gw, _) = mts_layout();
        let forged = MacAddr::local(0x99);
        let out = sw.ingress(NicPort::Vf(VfId(2)), frame(forged, gw));
        assert!(out.is_empty());
        assert_eq!(sw.counters().dropped_spoof, 1);
    }

    #[test]
    fn tagged_frames_from_vst_vf_are_dropped() {
        let (mut sw, _, gw, tenant) = mts_layout();
        let f = frame(tenant, gw).with_vlan(2);
        let out = sw.ingress(NicPort::Vf(VfId(2)), f);
        assert!(out.is_empty());
        assert_eq!(sw.counters().dropped_vlan, 1);
    }

    #[test]
    fn broadcast_floods_only_within_the_vlan() {
        let (mut sw, _, _, tenant) = mts_layout();
        let t2 = MacAddr::local(0x22);
        sw.configure_vf(VfId(3), VfConfig::tenant(t2, 2));
        let out = sw.ingress(NicPort::Vf(VfId(2)), frame(tenant, MacAddr::BROADCAST));
        let ports: Vec<NicPort> = out.iter().map(|d| d.port).collect();
        // VLAN 1 members: wire, VF1 (gw), VF2 (self, excluded). Not PF, not VF0/VF3.
        assert!(ports.contains(&NicPort::Wire));
        assert!(ports.contains(&NicPort::Vf(VfId(1))));
        assert!(!ports.contains(&NicPort::Vf(VfId(0))));
        assert!(!ports.contains(&NicPort::Vf(VfId(3))));
        assert!(!ports.contains(&NicPort::Pf));
        assert_eq!(sw.counters().flooded, 1);
    }

    #[test]
    fn untagged_broadcast_reaches_pf_and_untagged_vfs() {
        let (mut sw, inout, _, _) = mts_layout();
        let ext = MacAddr::local(0xee);
        let _ = inout;
        let out = sw.ingress(NicPort::Wire, frame(ext, MacAddr::BROADCAST));
        let ports: Vec<NicPort> = out.iter().map(|d| d.port).collect();
        assert!(ports.contains(&NicPort::Pf));
        assert!(ports.contains(&NicPort::Vf(VfId(0))));
        assert!(!ports.contains(&NicPort::Vf(VfId(1))));
        assert!(!ports.contains(&NicPort::Vf(VfId(2))));
    }

    #[test]
    fn learning_forwards_instead_of_flooding() {
        let mut sw = PfSwitch::new();
        sw.configure_vf(VfId(0), VfConfig::infrastructure(MacAddr::local(0x10)));
        let ext = MacAddr::local(0xee);
        // First, the external MAC talks in: it gets learned towards the wire.
        let _ = sw.ingress(NicPort::Wire, frame(ext, MacAddr::local(0x10)));
        // Now the VF replies: unicast straight to the wire, no flood.
        let out = sw.ingress(NicPort::Vf(VfId(0)), frame(MacAddr::local(0x10), ext));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].port, NicPort::Wire);
        assert_eq!(sw.counters().forwarded, 2);
        assert_eq!(sw.counters().flooded, 0);
    }

    #[test]
    fn learning_cannot_poison_static_entries() {
        let (mut sw, _, _, tenant) = mts_layout();
        // An attacker on the wire claims the tenant's MAC (in VLAN 1 it
        // would need a tagged frame; use the Gw VLAN via a tagged frame).
        let f = frame(tenant, MacAddr::local(0xaa)).with_vlan(1);
        let _ = sw.ingress(NicPort::Wire, f);
        assert_eq!(sw.counters().poison_attempts, 1);
        // The static entry still points at the tenant VF.
        assert_eq!(sw.lookup(1, tenant), Some(NicPort::Vf(VfId(2))));
    }

    #[test]
    fn vf_limit_is_enforced() {
        let mut sw = PfSwitch::new();
        for i in 0..MAX_VFS_PER_PF {
            assert!(sw.configure_vf(
                VfId(i as u8),
                VfConfig::infrastructure(MacAddr::local(i as u32))
            ));
        }
        assert!(!sw.configure_vf(VfId(64), VfConfig::infrastructure(MacAddr::local(1000))));
        assert_eq!(sw.vf_count(), MAX_VFS_PER_PF);
    }

    #[test]
    fn remove_vf_purges_table_state() {
        let (mut sw, _, _, tenant) = mts_layout();
        assert!(sw.remove_vf(VfId(2)).is_some());
        assert_eq!(sw.lookup(1, tenant), None);
        assert!(sw.remove_vf(VfId(2)).is_none());
        assert_eq!(sw.vf_count(), 2);
    }

    #[test]
    fn reconfigure_vf_moves_static_entry() {
        let mut sw = PfSwitch::new();
        let old_mac = MacAddr::local(1);
        let new_mac = MacAddr::local(2);
        sw.configure_vf(VfId(0), VfConfig::tenant(old_mac, 5));
        sw.configure_vf(VfId(0), VfConfig::tenant(new_mac, 6));
        assert_eq!(sw.lookup(5, old_mac), None);
        assert_eq!(sw.lookup(6, new_mac), Some(NicPort::Vf(VfId(0))));
        assert_eq!(sw.vf_count(), 1);
    }

    #[test]
    fn static_macs_excludes_learned_entries_and_is_sorted() {
        let (mut sw, inout, gw, tenant) = mts_layout();
        sw.install_static_mac(0, MacAddr::local(0xaa), NicPort::Pf);
        // Learn an external MAC towards the wire; it must not appear.
        let ext = MacAddr::local(0xee);
        let _ = sw.ingress(NicPort::Wire, frame(ext, inout));
        let statics = sw.static_macs();
        assert_eq!(statics.len(), 4);
        assert!(statics.iter().all(|(_, m, _)| *m != ext));
        assert!(statics.contains(&(0, inout, NicPort::Vf(VfId(0)))));
        assert!(statics.contains(&(0, MacAddr::local(0xaa), NicPort::Pf)));
        assert!(statics.contains(&(1, gw, NicPort::Vf(VfId(1)))));
        assert!(statics.contains(&(1, tenant, NicPort::Vf(VfId(2)))));
        let mut sorted = statics.clone();
        sorted.sort_by_key(|(v, m, _)| (*v, m.as_u64()));
        assert_eq!(statics, sorted);
    }

    #[test]
    fn flush_table_keeps_vf_entries_and_drops_the_rest() {
        let (mut sw, inout, _, tenant) = mts_layout();
        let wire_mac = MacAddr::local(0xaa);
        sw.install_static_mac(0, wire_mac, NicPort::Wire);
        // Learn an external MAC too.
        let ext = MacAddr::local(0xee);
        let _ = sw.ingress(NicPort::Wire, frame(ext, inout));
        assert_eq!(sw.lookup(0, ext), Some(NicPort::Wire));

        sw.flush_table();
        // Operator static and learned entry gone…
        assert_eq!(sw.lookup(0, wire_mac), None);
        assert_eq!(sw.lookup(0, ext), None);
        // …but VF-config-derived entries survive.
        assert_eq!(sw.lookup(0, inout), Some(NicPort::Vf(VfId(0))));
        assert_eq!(sw.lookup(1, tenant), Some(NicPort::Vf(VfId(2))));
    }

    #[test]
    fn remove_static_mac_only_touches_statics() {
        let mut sw = PfSwitch::new();
        let m = MacAddr::local(0xaa);
        sw.install_static_mac(0, m, NicPort::Wire);
        assert!(sw.remove_static_mac(0, m));
        assert!(!sw.remove_static_mac(0, m));
        // A learned entry is not removable through this path.
        let ext = MacAddr::local(0xee);
        let _ = sw.ingress(NicPort::Wire, frame(ext, m));
        assert!(!sw.remove_static_mac(0, ext));
        assert_eq!(sw.lookup(0, ext), Some(NicPort::Wire));
    }

    #[test]
    fn filters_drop_before_learning() {
        let (mut sw, _, _, tenant) = mts_layout();
        sw.add_filter(FilterRule::drop_all_from(crate::filter::PortClass::Vf(
            VfId(2),
        )));
        let out = sw.ingress(NicPort::Vf(VfId(2)), frame(tenant, MacAddr::local(0x11)));
        assert!(out.is_empty());
        assert_eq!(sw.counters().dropped_filter, 1);
    }
}
