//! SR-IOV NIC simulator with an embedded VEB L2 switch.
//!
//! Models the NIC at the centre of the MTS architecture (paper Sec. 3.1):
//! a PCIe device exposing one *physical function* (PF) per physical port and
//! up to 64 *virtual functions* (VFs) per PF. Frames between PFs, VFs and
//! the wire are forwarded by an embedded L2 switch following IEEE 802.1Qbg
//! *Virtual Ethernet Bridging*:
//!
//! - per-VLAN MAC learning with flooding of unknown unicast/broadcast,
//! - VST ("VLAN switch tagging"): a VF configured with a VLAN id has frames
//!   tagged on ingress and stripped on egress, exactly the mechanism MTS
//!   uses to pin tenants to their vswitch compartment (Fig. 3),
//! - MAC anti-spoofing on VF ingress,
//! - operator-installed wildcard security filters ("drop packets not
//!   destined to the vswitch compartment", "prevent the Host from receiving
//!   packets from tenant VMs", Sec. 3.2),
//! - a capacity model: PCIe DMA cost per VF crossing and a rate-limited
//!   VF↔VF *hairpin* engine — the mechanism behind the paper's ≈2.3 Mpps
//!   saturation when packets "bounce off the NIC twice" (Sec. 4.1).
//!
//! Only the host (PF driver) may configure VFs; the VM-facing API is
//! restricted, mirroring the privilege split the paper relies on.

pub mod filter;
pub mod model;
pub mod nic;
pub mod switch;
pub mod vf;

pub use filter::{FilterAction, FilterRule, PortClass};
pub use model::NicModel;
pub use nic::{NicError, PfId, SriovNic};
pub use switch::{Delivery, PfSwitch, SwitchCounters};
pub use vf::{NicPort, VfConfig, VfId};
