//! Property tests for the header-set primitives `mts-isocheck` builds on:
//! `Ipv4Prefix` containment/overlap and `FlowMatch` subsumption.

use mts_net::{EtherType, Frame, IpProto, MacAddr, Transport};
use mts_vswitch::{FlowMatch, Ipv4Prefix, PortNo, VlanMatch};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn mask_of(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - u32::from(len))
    }
}

fn arb_prefix() -> impl Strategy<Value = Ipv4Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(a, l)| Ipv4Prefix::new(Ipv4Addr::from(a), l))
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        proptest::option::of(1u16..4095),
    )
        .prop_map(|(sm, dm, sip, dip, sp, dp, vlan)| {
            let mut f = Frame::udp_data(
                MacAddr::local(sm),
                MacAddr::local(dm),
                Ipv4Addr::from(sip),
                Ipv4Addr::from(dip),
                sp,
                dp,
                64,
            );
            if let Some(v) = vlan {
                f = f.with_vlan(v);
            }
            f
        })
}

/// A match that provably accepts `f` on `port`: each bit of `sel` pins one
/// field to the frame's own value; prefix fields use the given lengths.
fn match_for_frame(f: &Frame, port: PortNo, sel: u16, plen_src: u8, plen_dst: u8) -> FlowMatch {
    let ip = f.ipv4().expect("generated frames carry IPv4");
    let (sport, dport) = match &ip.transport {
        Transport::Udp(u) => (u.sport, u.dport),
        Transport::Tcp(t) => (t.sport, t.dport),
        Transport::Raw { .. } => (0, 0),
    };
    FlowMatch {
        in_port: (sel & 0x001 != 0).then_some(port),
        eth_src: (sel & 0x002 != 0).then_some(f.src),
        eth_dst: (sel & 0x004 != 0).then_some(f.dst),
        vlan: if sel & 0x008 != 0 {
            match f.vlan {
                Some(t) => VlanMatch::Tag(t.vid),
                None => VlanMatch::Untagged,
            }
        } else {
            VlanMatch::Any
        },
        ethertype: (sel & 0x010 != 0).then_some(EtherType::Ipv4),
        ip_src: (sel & 0x020 != 0).then(|| Ipv4Prefix::new(ip.src, plen_src)),
        ip_dst: (sel & 0x040 != 0).then(|| Ipv4Prefix::new(ip.dst, plen_dst)),
        ip_proto: (sel & 0x080 != 0).then_some(IpProto::Udp),
        l4_src: (sel & 0x100 != 0).then_some(sport),
        l4_dst: (sel & 0x200 != 0).then_some(dport),
        tun_id: None,
    }
}

proptest! {
    #[test]
    fn prefix_new_is_canonical(p in arb_prefix()) {
        // Host bits are zeroed, so re-canonicalizing is a no-op and the
        // network address is a member of its own prefix.
        prop_assert_eq!(Ipv4Prefix::new(p.net, p.len), p);
        prop_assert!(p.contains(p.net));
    }

    #[test]
    fn prefix_contains_all_its_addresses(p in arb_prefix(), host in any::<u32>()) {
        let addr = Ipv4Addr::from(u32::from(p.net) | (host & !mask_of(p.len)));
        prop_assert!(p.contains(addr));
    }

    #[test]
    fn containment_implies_membership(a in arb_prefix(), b in arb_prefix(), host in any::<u32>()) {
        let addr_in_b = Ipv4Addr::from(u32::from(b.net) | (host & !mask_of(b.len)));
        if a.contains_prefix(&b) {
            prop_assert!(a.contains(addr_in_b));
            prop_assert!(a.len <= b.len);
        }
    }

    #[test]
    fn overlap_is_symmetric_and_laminar(a in arb_prefix(), b in arb_prefix()) {
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
        // Prefixes form a laminar family: overlap ⟺ one contains the other,
        // which in turn ⟺ one's network address lies in the other.
        prop_assert_eq!(
            a.overlaps(&b),
            a.contains_prefix(&b) || b.contains_prefix(&a)
        );
        prop_assert_eq!(a.overlaps(&b), a.contains(b.net) || b.contains(a.net));
    }

    #[test]
    fn disjoint_prefixes_share_no_address(a in arb_prefix(), b in arb_prefix(), host in any::<u32>()) {
        prop_assume!(!a.overlaps(&b));
        let addr_in_a = Ipv4Addr::from(u32::from(a.net) | (host & !mask_of(a.len)));
        prop_assert!(!b.contains(addr_in_a));
    }

    #[test]
    fn shorter_prefix_of_same_address_contains(addr in any::<u32>(), l1 in 0u8..=32, l2 in 0u8..=32) {
        let short = Ipv4Prefix::new(Ipv4Addr::from(addr), l1.min(l2));
        let long = Ipv4Prefix::new(Ipv4Addr::from(addr), l1.max(l2));
        prop_assert!(short.contains_prefix(&long));
        prop_assert!(short.overlaps(&long));
    }

    #[test]
    fn subsumption_is_reflexive(
        f in arb_frame(),
        port in 1u32..8,
        sel in any::<u16>(),
        pl_src in 0u8..=32,
        pl_dst in 0u8..=32,
    ) {
        let m = match_for_frame(&f, PortNo(port), sel, pl_src, pl_dst);
        prop_assert!(m.subsumes(&m));
        prop_assert!(FlowMatch::any().subsumes(&m));
    }

    #[test]
    fn generalization_subsumes_and_both_match(
        f in arb_frame(),
        port in 1u32..8,
        sel in any::<u16>(),
        keep in any::<u16>(),
        pl_src in 0u8..=32,
        pl_dst in 0u8..=32,
        widen_src in 0u8..=32,
        widen_dst in 0u8..=32,
    ) {
        // `m` pins a subset of fields to the frame's values; `g` keeps only
        // a subset of those and widens the prefixes, so it must subsume `m`
        // and still accept every frame `m` accepts — in particular `f`.
        let m = match_for_frame(&f, PortNo(port), sel, pl_src, pl_dst);
        let g = match_for_frame(
            &f,
            PortNo(port),
            sel & keep,
            pl_src.min(widen_src),
            pl_dst.min(widen_dst),
        );
        prop_assert!(m.matches(PortNo(port), &f, None));
        prop_assert!(g.matches(PortNo(port), &f, None));
        prop_assert!(g.subsumes(&m));
        prop_assert!(g.specificity() <= m.specificity());
    }

    #[test]
    fn subsumption_is_sound_on_random_pairs(
        f in arb_frame(),
        port in 1u32..8,
        sel_a in any::<u16>(),
        sel_b in any::<u16>(),
        pl_a in 0u8..=32,
        pl_b in 0u8..=32,
    ) {
        // For arbitrary match pairs: whenever `a.subsumes(b)` holds and `b`
        // accepts a frame, `a` must accept it too (the guarantee isocheck's
        // shadowed-rule warning relies on).
        let a = match_for_frame(&f, PortNo(port), sel_a, pl_a, pl_a);
        let b = match_for_frame(&f, PortNo(port), sel_b, pl_b, pl_b);
        if a.subsumes(&b) && b.matches(PortNo(port), &f, None) {
            prop_assert!(a.matches(PortNo(port), &f, None));
        }
    }
}
