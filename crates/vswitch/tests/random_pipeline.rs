//! Property tests: the flow pipeline under random rules and traffic.

use mts_net::{Frame, MacAddr};
use mts_vswitch::{Action, FlowMatch, FlowRule, Ipv4Prefix, PortKind, PortNo, VirtualSwitch};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_frame() -> impl Strategy<Value = Frame> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        proptest::option::of(1u16..4095),
    )
        .prop_map(|(sm, dm, sip, dip, sp, dp, vlan)| {
            let mut f = Frame::udp_data(
                MacAddr::local(sm),
                MacAddr::local(dm),
                Ipv4Addr::from(sip),
                Ipv4Addr::from(dip),
                sp,
                dp,
                64,
            );
            if let Some(v) = vlan {
                f = f.with_vlan(v);
            }
            f
        })
}

fn arb_action(ports: u32) -> impl Strategy<Value = Action> {
    prop_oneof![
        (1..=ports).prop_map(|p| Action::Output(PortNo(p))),
        Just(Action::Flood),
        Just(Action::Normal),
        Just(Action::Drop),
        any::<u32>().prop_map(|m| Action::SetEthDst(MacAddr::local(m))),
        (1u16..4095).prop_map(Action::PushVlan),
        Just(Action::PopVlan),
        Just(Action::DecTtl),
    ]
}

fn arb_rule(ports: u32) -> impl Strategy<Value = FlowRule> {
    (
        0u16..100,
        proptest::option::of(1..=ports),
        proptest::option::of(any::<u32>()),
        proptest::option::of((any::<u32>(), 0u8..=32)),
        proptest::collection::vec(arb_action(ports), 0..4),
    )
        .prop_map(|(priority, in_port, dst_mac, dst_prefix, actions)| {
            let m = FlowMatch {
                in_port: in_port.map(PortNo),
                eth_dst: dst_mac.map(MacAddr::local),
                ip_dst: dst_prefix.map(|(a, l)| Ipv4Prefix::new(Ipv4Addr::from(a), l)),
                ..FlowMatch::default()
            };
            FlowRule::new(priority, m, actions)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// No combination of random rules and frames panics, loops, or emits
    /// to the ingress port (except explicit Output back to it).
    #[test]
    fn pipeline_is_total_and_sane(
        rules in proptest::collection::vec(arb_rule(4), 0..24),
        frames in proptest::collection::vec(arb_frame(), 1..48),
        in_ports in proptest::collection::vec(1u32..=4, 1..48),
    ) {
        let mut sw = VirtualSwitch::new("fuzz");
        for i in 0..4 {
            sw.add_port(format!("p{i}"), PortKind::Physical);
        }
        let has_explicit_self_output = rules.iter().any(|r| {
            r.actions.iter().any(|a| matches!(a, Action::Output(_)))
        });
        for r in rules {
            sw.install(0, r).expect("table 0 exists");
        }
        for (f, ip) in frames.iter().zip(in_ports.iter().cycle()) {
            let in_port = PortNo(*ip);
            let out = sw.process(in_port, f.clone());
            // Flood/Normal never echo to the ingress port.
            if !has_explicit_self_output {
                prop_assert!(out.iter().all(|(p, _)| *p != in_port));
            }
            // Emission count is bounded by the port fanout per rule chain.
            prop_assert!(out.len() <= 4 * 8, "absurd fanout {}", out.len());
        }
        // Conservation: received counts every call.
        prop_assert_eq!(sw.stats().received, frames.len() as u64);
    }

    /// The cache never changes forwarding decisions: replaying the same
    /// frame twice yields identical emissions.
    #[test]
    fn cache_transparency(
        rules in proptest::collection::vec(arb_rule(4), 1..16),
        frame in arb_frame(),
    ) {
        // Skip NORMAL (learning mutates state between calls by design).
        let rules: Vec<FlowRule> = rules
            .into_iter()
            .filter(|r| !r.actions.iter().any(|a| matches!(a, Action::Normal | Action::Flood)))
            .collect();
        let mut sw = VirtualSwitch::new("cachefuzz");
        for i in 0..4 {
            sw.add_port(format!("p{i}"), PortKind::Physical);
        }
        for r in rules {
            sw.install(0, r).expect("table 0 exists");
        }
        let first = sw.process(PortNo(1), frame.clone());
        let second = sw.process(PortNo(1), frame.clone());
        prop_assert_eq!(first.len(), second.len());
        for ((p1, f1), (p2, f2)) in first.iter().zip(second.iter()) {
            prop_assert_eq!(p1, p2);
            prop_assert_eq!(f1.dst, f2.dst);
            prop_assert_eq!(f1.src, f2.src);
            prop_assert_eq!(f1.vlan, f2.vlan);
        }
        // And the second traversal hit the cache (unless TTL barred caching).
        let cs = sw.cache_stats();
        prop_assert!(cs.hits >= 1 || cs.misses == 2);
    }

    /// Higher-priority matching rules always win.
    #[test]
    fn priority_always_wins(
        dst in any::<u32>(),
        low_prio in 0u16..50,
        high_prio in 50u16..100,
    ) {
        let mut sw = VirtualSwitch::new("prio");
        let a = sw.add_port("a", PortKind::Physical);
        let lo = sw.add_port("lo", PortKind::Physical);
        let hi = sw.add_port("hi", PortKind::Physical);
        let dip = Ipv4Addr::from(dst);
        sw.install(0, FlowRule::new(low_prio, FlowMatch::to_ip(dip), vec![Action::Output(lo)]))
            .expect("table 0 exists");
        sw.install(0, FlowRule::new(high_prio, FlowMatch::to_ip(dip), vec![Action::Output(hi)]))
            .expect("table 0 exists");
        let f = Frame::udp_data(
            MacAddr::local(1),
            MacAddr::local(2),
            Ipv4Addr::new(9, 9, 9, 9),
            dip,
            1,
            2,
            20,
        );
        let out = sw.process(a, f);
        prop_assert_eq!(out.len(), 1);
        prop_assert_eq!(out[0].0, hi);
    }
}
