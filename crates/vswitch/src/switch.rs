//! The virtual switch: ports, pipeline execution and the `NORMAL` action.

use crate::actions::Action;
use crate::cache::{FlowCache, FlowKey, FlowProgram};
use crate::table::{FlowRule, FlowTable, TableId};
use mts_net::{
    Frame, Ipv4Packet, MacAddr, Payload, Transport, UdpDatagram, UdpPayload, Vni, VXLAN_UDP_PORT,
};
use mts_sim::FastHashMap;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::net::Ipv4Addr;

/// A switch port number (OpenFlow port).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct PortNo(pub u32);

impl fmt::Display for PortNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "port{}", self.0)
    }
}

/// What backs a switch port — drives the runtime's cost accounting.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum PortKind {
    /// A physical NIC port or PF (Baseline) attached directly.
    Physical,
    /// An SR-IOV VF (MTS vswitch-VM ports: In/Out VF, Gw VF).
    VfBacked,
    /// A kernel vhost/virtio channel to a local VM (Baseline tenant port).
    Vhost,
    /// A DPDK `dpdkvhostuserclient` port (Baseline Level-3 tenant port).
    DpdkVhostUser,
    /// A switch-internal port (management).
    Internal,
}

/// Metadata of one switch port.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortInfo {
    /// Human-readable name (e.g. `in_out0`, `gw-red0`, `vhost-t1`).
    pub name: String,
    /// Backing kind.
    pub kind: PortKind,
}

/// Aggregate forwarding statistics of a switch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwitchStats {
    /// Frames handed to the switch.
    pub received: u64,
    /// Frames emitted on ports.
    pub emitted: u64,
    /// Frames dropped because no rule matched.
    pub no_match_drops: u64,
    /// Frames dropped by explicit `Drop` actions.
    pub action_drops: u64,
    /// Frames dropped by TTL expiry.
    pub ttl_drops: u64,
    /// Frames dropped by failed decapsulation.
    pub decap_drops: u64,
    /// MAC-learning entries refused because the table was full.
    pub learn_overflow: u64,
}

/// A concrete, fully-resolved datapath operation (what the cache stores).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    /// Set destination MAC.
    SetDst(MacAddr),
    /// Set source MAC.
    SetSrc(MacAddr),
    /// Push a VLAN tag.
    PushVlan(u16),
    /// Pop the VLAN tag.
    PopVlan,
    /// Decrement TTL (drops the frame at zero).
    DecTtl,
    /// VXLAN-encapsulate.
    Encap {
        /// Tunnel id.
        vni: Vni,
        /// Outer source IP.
        src_ip: Ipv4Addr,
        /// Outer destination IP.
        dst_ip: Ipv4Addr,
        /// Outer source MAC.
        src_mac: MacAddr,
        /// Outer destination MAC.
        dst_mac: MacAddr,
    },
    /// VXLAN-decapsulate (drops non-VXLAN frames).
    Decap,
    /// Emit a copy of the current frame on a port.
    Emit(PortNo),
}

/// The maximum number of MAC-learning entries (`NORMAL` action state).
const MAC_TABLE_CAP: usize = 4096;

/// A multi-table, cache-accelerated virtual switch.
///
/// # Examples
///
/// ```
/// use mts_vswitch::{VirtualSwitch, PortKind, FlowRule, FlowMatch, Action};
/// use mts_net::{Frame, MacAddr};
/// use std::net::Ipv4Addr;
///
/// let mut sw = VirtualSwitch::new("br0");
/// let p_in = sw.add_port("in", PortKind::Physical);
/// let p_out = sw.add_port("out", PortKind::Physical);
/// sw.install(0, FlowRule::new(10, FlowMatch::on_port(p_in),
///     vec![Action::Output(p_out)])).unwrap();
/// let f = Frame::udp_data(MacAddr::local(1), MacAddr::local(2),
///     Ipv4Addr::new(10,0,0,1), Ipv4Addr::new(10,0,0,2), 1, 2, 10);
/// let out = sw.process(p_in, f);
/// assert_eq!(out.len(), 1);
/// assert_eq!(out[0].0, p_out);
/// ```
pub struct VirtualSwitch {
    name: String,
    ports: BTreeMap<PortNo, PortInfo>,
    next_port: u32,
    tables: Vec<FlowTable>,
    mac_table: FastHashMap<(u16, u64), PortNo>,
    cache: FlowCache,
    stats: SwitchStats,
    /// Per-cookie packet/byte statistics including fast-path hits (the
    /// megaflow push-back real OvS performs during revalidation).
    cookie_stats: FastHashMap<u64, crate::table::FlowStats>,
    /// Per-cookie slow-path traversal counts — how many of a cookie's
    /// packets missed the flow cache. Billing weighs a tenant's share of
    /// vswitch CPU by hits and misses separately, since a miss costs an
    /// order of magnitude more than a hit.
    cookie_misses: FastHashMap<u64, u64>,
}

/// Errors from switch configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwitchError {
    /// The referenced table id is out of range.
    NoSuchTable(u8),
    /// The referenced port does not exist.
    NoSuchPort(PortNo),
}

impl fmt::Display for SwitchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwitchError::NoSuchTable(t) => write!(f, "no such table {t}"),
            SwitchError::NoSuchPort(p) => write!(f, "no such port {p}"),
        }
    }
}

impl std::error::Error for SwitchError {}

/// Number of pipeline tables (OvS has 255; 8 is ample here).
const NUM_TABLES: usize = 8;

impl VirtualSwitch {
    /// Creates a switch with no ports and empty tables.
    pub fn new(name: impl Into<String>) -> Self {
        VirtualSwitch {
            name: name.into(),
            ports: BTreeMap::new(),
            next_port: 1,
            tables: (0..NUM_TABLES).map(|_| FlowTable::new()).collect(),
            mac_table: FastHashMap::default(),
            cache: FlowCache::new(8192),
            stats: SwitchStats::default(),
            cookie_stats: FastHashMap::default(),
            cookie_misses: FastHashMap::default(),
        }
    }

    /// Returns the switch name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns aggregate statistics.
    pub fn stats(&self) -> SwitchStats {
        self.stats
    }

    /// Returns cache statistics.
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.cache.stats()
    }

    /// Adds a port; port numbers are assigned sequentially from 1.
    pub fn add_port(&mut self, name: impl Into<String>, kind: PortKind) -> PortNo {
        let no = PortNo(self.next_port);
        self.next_port += 1;
        self.ports.insert(
            no,
            PortInfo {
                name: name.into(),
                kind,
            },
        );
        self.cache.bump_generation();
        no
    }

    /// Removes a port, purging learning state.
    pub fn remove_port(&mut self, port: PortNo) -> Result<PortInfo, SwitchError> {
        let info = self
            .ports
            .remove(&port)
            .ok_or(SwitchError::NoSuchPort(port))?;
        self.mac_table.retain(|_, p| *p != port);
        self.cache.bump_generation();
        Ok(info)
    }

    /// Returns a port's metadata.
    pub fn port(&self, port: PortNo) -> Option<&PortInfo> {
        self.ports.get(&port)
    }

    /// Iterates over ports.
    pub fn ports(&self) -> impl Iterator<Item = (PortNo, &PortInfo)> {
        self.ports.iter().map(|(k, v)| (*k, v))
    }

    /// Number of ports.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// Installs a rule into a table.
    pub fn install(&mut self, table: u8, rule: FlowRule) -> Result<(), SwitchError> {
        let t = self
            .tables
            .get_mut(table as usize)
            .ok_or(SwitchError::NoSuchTable(table))?;
        t.add(rule);
        self.cache.bump_generation();
        Ok(())
    }

    /// Removes rules by cookie across all tables; returns how many.
    pub fn remove_by_cookie(&mut self, cookie: u64) -> usize {
        let n = self
            .tables
            .iter_mut()
            .map(|t| t.remove_by_cookie(cookie))
            .sum();
        self.cache.bump_generation();
        n
    }

    /// Clears all tables and learning state.
    pub fn clear(&mut self) {
        for t in &mut self.tables {
            t.clear();
        }
        self.mac_table.clear();
        self.cache.bump_generation();
    }

    /// Returns the number of rules in a table.
    pub fn table_len(&self, table: u8) -> usize {
        self.tables
            .get(table as usize)
            .map(|t| t.len())
            .unwrap_or(0)
    }

    /// Total rules across all tables.
    pub fn rule_count(&self) -> usize {
        self.tables.iter().map(|t| t.len()).sum()
    }

    /// Processes a frame: fast path on cache hit, full pipeline otherwise.
    ///
    /// Returns `(port, frame)` pairs to emit. Whether the packet hit the
    /// cache is observable via [`Self::cache_stats`] — the runtime charges
    /// different CPU costs for hit and miss.
    pub fn process(&mut self, in_port: PortNo, frame: Frame) -> Vec<(PortNo, Frame)> {
        self.stats.received += 1;
        let key = FlowKey::of(in_port, &frame);
        let (prog, missed) = match self.cache.get(&key) {
            Some(prog) => (prog, false),
            None => {
                let (ops, cookies, cacheable) = self.resolve(in_port, &frame);
                let prog = if cacheable {
                    self.cache.insert(key, ops, cookies)
                } else {
                    FlowProgram::new(ops, cookies)
                };
                (prog, true)
            }
        };
        // Credit the matched rules' cookies (slow path already counted in
        // the tables; this map is the total including fast-path hits).
        let wire = u64::from(frame.wire_len());
        for &cookie in prog.cookies() {
            let st = self.cookie_stats.entry(cookie).or_default();
            st.packets += 1;
            st.bytes += wire;
            if missed {
                *self.cookie_misses.entry(cookie).or_insert(0) += 1;
            }
        }
        self.apply(prog.ops(), frame)
    }

    /// Total packets/bytes handled on behalf of rules with `cookie`,
    /// including fast-path (cached) traffic.
    pub fn stats_by_cookie(&self, cookie: u64) -> (u64, u64) {
        self.cookie_stats
            .get(&cookie)
            .map(|s| (s.packets, s.bytes))
            .unwrap_or((0, 0))
    }

    /// How many of `cookie`'s packets took the slow path (cache miss).
    pub fn misses_by_cookie(&self, cookie: u64) -> u64 {
        self.cookie_misses.get(&cookie).copied().unwrap_or(0)
    }

    /// Resolves the pipeline into concrete ops for this packet's key.
    ///
    /// Also returns the cookies of matched rules (for statistics) and
    /// whether the result is cacheable — `false` when the outcome depends
    /// on fields outside the flow key (currently: TTL expiry).
    fn resolve(&mut self, in_port: PortNo, original: &Frame) -> (Vec<Op>, Vec<u64>, bool) {
        let mut ops = Vec::new();
        let mut cookies = Vec::new();
        let mut frame = original.clone();
        let mut tun_id: Option<Vni> = None;
        let mut table = 0usize;
        let mut hops = 0;
        loop {
            hops += 1;
            if hops > NUM_TABLES {
                // Goto loop guard: treat as drop.
                self.stats.action_drops += 1;
                return (ops_without_emits(ops), cookies, true);
            }
            let Some(t) = self.tables.get_mut(table) else {
                self.stats.no_match_drops += 1;
                return (ops_without_emits(ops), cookies, true);
            };
            let Some(rule) = t.lookup(in_port, &frame, tun_id) else {
                self.stats.no_match_drops += 1;
                return (ops_without_emits(ops), cookies, true);
            };
            if rule.cookie != 0 {
                cookies.push(rule.cookie);
            }
            let actions = rule.actions.clone();
            let mut goto: Option<usize> = None;
            for act in actions {
                match act {
                    Action::Output(p) => ops.push(Op::Emit(p)),
                    Action::Flood => {
                        for (p, _) in self.ports.iter() {
                            if *p != in_port {
                                ops.push(Op::Emit(*p));
                            }
                        }
                    }
                    Action::Normal => {
                        self.normal(in_port, &frame, &mut ops);
                    }
                    Action::SetEthDst(m) => {
                        frame.dst = m;
                        ops.push(Op::SetDst(m));
                    }
                    Action::SetEthSrc(m) => {
                        frame.src = m;
                        ops.push(Op::SetSrc(m));
                    }
                    Action::PushVlan(v) => {
                        frame = frame.with_vlan(v);
                        ops.push(Op::PushVlan(v));
                    }
                    Action::PopVlan => {
                        frame.vlan = None;
                        ops.push(Op::PopVlan);
                    }
                    Action::DecTtl => {
                        if let Payload::Ipv4(ip) = frame.payload.make_mut() {
                            if ip.ttl <= 1 {
                                self.stats.ttl_drops += 1;
                                // TTL is not part of the flow key: do not cache.
                                return (ops_without_emits(ops), cookies, false);
                            }
                            ip.ttl -= 1;
                        }
                        ops.push(Op::DecTtl);
                    }
                    Action::VxlanEncap {
                        vni,
                        src_ip,
                        dst_ip,
                        src_mac,
                        dst_mac,
                    } => {
                        frame = encapsulate(frame, vni, src_ip, dst_ip, src_mac, dst_mac);
                        ops.push(Op::Encap {
                            vni,
                            src_ip,
                            dst_ip,
                            src_mac,
                            dst_mac,
                        });
                    }
                    Action::VxlanDecap => match decapsulate(frame.clone()) {
                        Some((inner, vni)) => {
                            frame = inner;
                            tun_id = Some(vni);
                            ops.push(Op::Decap);
                        }
                        None => {
                            self.stats.decap_drops += 1;
                            return (ops_without_emits(ops), cookies, true);
                        }
                    },
                    Action::GotoTable(TableId(t)) => {
                        goto = Some(t as usize);
                    }
                    Action::Drop => {
                        self.stats.action_drops += 1;
                        return (ops_without_emits(ops), cookies, true);
                    }
                }
            }
            match goto {
                Some(next) if next > table => table = next,
                Some(_) => {
                    // Backward goto is illegal (loop); drop.
                    self.stats.action_drops += 1;
                    return (ops_without_emits(ops), cookies, true);
                }
                None => return (ops, cookies, true),
            }
        }
    }

    /// The `NORMAL` learning-switch behaviour.
    fn normal(&mut self, in_port: PortNo, frame: &Frame, ops: &mut Vec<Op>) {
        let vlan = frame.vlan.map(|t| t.vid).unwrap_or(0);
        // Learn the source towards the ingress port.
        if frame.src.is_unicast() {
            let key = (vlan, frame.src.as_u64());
            let known = self.mac_table.get(&key).copied();
            if known != Some(in_port) {
                if self.mac_table.len() >= MAC_TABLE_CAP && known.is_none() {
                    self.stats.learn_overflow += 1;
                } else {
                    self.mac_table.insert(key, in_port);
                    // Learning changes future NORMAL resolutions.
                    self.cache.bump_generation();
                }
            }
        }
        // Forward or flood.
        if frame.dst.is_unicast() {
            if let Some(port) = self.mac_table.get(&(vlan, frame.dst.as_u64())) {
                if *port != in_port {
                    ops.push(Op::Emit(*port));
                }
                return;
            }
        }
        for (p, _) in self.ports.iter() {
            if *p != in_port {
                ops.push(Op::Emit(*p));
            }
        }
    }

    /// Applies resolved ops to a frame, producing emissions.
    fn apply(&mut self, ops: &[Op], frame: Frame) -> Vec<(PortNo, Frame)> {
        let mut cur = frame;
        let mut out = Vec::new();
        for op in ops {
            match op {
                Op::SetDst(m) => cur.dst = *m,
                Op::SetSrc(m) => cur.src = *m,
                Op::PushVlan(v) => cur = cur.with_vlan(*v),
                Op::PopVlan => cur.vlan = None,
                Op::DecTtl => {
                    if let Payload::Ipv4(ip) = cur.payload.make_mut() {
                        if ip.ttl <= 1 {
                            self.stats.ttl_drops += 1;
                            break;
                        }
                        ip.ttl -= 1;
                    }
                }
                Op::Encap {
                    vni,
                    src_ip,
                    dst_ip,
                    src_mac,
                    dst_mac,
                } => {
                    cur = encapsulate(cur, *vni, *src_ip, *dst_ip, *src_mac, *dst_mac);
                }
                Op::Decap => match decapsulate(cur) {
                    Some((inner, _)) => cur = inner,
                    None => {
                        self.stats.decap_drops += 1;
                        return out;
                    }
                },
                Op::Emit(p) => {
                    self.stats.emitted += 1;
                    out.push((*p, cur.clone()));
                }
            }
        }
        out
    }

    /// Returns what the MAC-learning table knows about `(vlan, mac)`.
    pub fn learned(&self, vlan: u16, mac: MacAddr) -> Option<PortNo> {
        self.mac_table.get(&(vlan, mac.as_u64())).copied()
    }

    /// Dumps all installed rules as `(table, rule)` pairs with fresh
    /// statistics — what a controller reads back for reconciliation.
    pub fn dump_rules(&self) -> Vec<(u8, FlowRule)> {
        let mut out = Vec::new();
        for (t, table) in self.tables.iter().enumerate() {
            for r in table.rules() {
                let mut rule = r.clone();
                rule.stats = crate::table::FlowStats::default();
                out.push((t as u8, rule));
            }
        }
        out
    }
}

/// Strips emissions from an op list (the packet was ultimately dropped, but
/// field rewrites may already be cached — the cached entry must also drop).
fn ops_without_emits(mut ops: Vec<Op>) -> Vec<Op> {
    ops.retain(|op| !matches!(op, Op::Emit(_)));
    ops
}

/// Wraps a frame in a VXLAN envelope.
fn encapsulate(
    inner: Frame,
    vni: Vni,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    src_mac: MacAddr,
    dst_mac: MacAddr,
) -> Frame {
    let mut outer = Frame::new(
        src_mac,
        dst_mac,
        Payload::Ipv4(Ipv4Packet {
            src: src_ip,
            dst: dst_ip,
            ttl: 64,
            tos: 0,
            transport: Transport::Udp(UdpDatagram {
                // Source port derived from the inner flow hash for ECMP,
                // as real VTEPs do.
                sport: 49152 + (inner.flow_hash() % 16384) as u16,
                dport: VXLAN_UDP_PORT,
                payload: UdpPayload::Vxlan {
                    vni,
                    inner: Box::new(inner),
                },
            }),
        }),
    );
    outer.origin_ns = match outer.payload.get() {
        Payload::Ipv4(ip) => match &ip.transport {
            Transport::Udp(u) => match &u.payload {
                UdpPayload::Vxlan { inner, .. } => inner.origin_ns,
                _ => 0,
            },
            _ => 0,
        },
        _ => 0,
    };
    outer
}

/// Unwraps a VXLAN envelope, returning the inner frame and its VNI.
///
/// Measurement metadata (origin timestamp, frame id) carries over from the
/// envelope when the inner frame has none — timestamps must survive
/// tunnel transitions for one-way latency measurement.
fn decapsulate(outer: Frame) -> Option<(Frame, Vni)> {
    let (origin, id) = (outer.origin_ns, outer.id);
    match outer.payload.into_inner() {
        Payload::Ipv4(ip) => match ip.transport {
            Transport::Udp(u) if u.dport == VXLAN_UDP_PORT => match u.payload {
                UdpPayload::Vxlan { vni, inner } => {
                    let mut inner = *inner;
                    if inner.origin_ns == 0 {
                        inner.origin_ns = origin;
                        inner.id = id;
                    }
                    Some((inner, vni))
                }
                _ => None,
            },
            _ => None,
        },
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowMatch;

    fn frame(dst_ip: Ipv4Addr) -> Frame {
        Frame::udp_data(
            MacAddr::local(1),
            MacAddr::local(2),
            Ipv4Addr::new(10, 0, 0, 1),
            dst_ip,
            1000,
            2000,
            64,
        )
    }

    fn two_port_switch() -> (VirtualSwitch, PortNo, PortNo) {
        let mut sw = VirtualSwitch::new("test");
        let a = sw.add_port("a", PortKind::Physical);
        let b = sw.add_port("b", PortKind::Physical);
        (sw, a, b)
    }

    #[test]
    fn no_rules_means_drop() {
        let (mut sw, a, _) = two_port_switch();
        let out = sw.process(a, frame(Ipv4Addr::new(1, 1, 1, 1)));
        assert!(out.is_empty());
        assert_eq!(sw.stats().no_match_drops, 1);
    }

    #[test]
    fn cache_hit_on_second_packet() {
        let (mut sw, a, b) = two_port_switch();
        sw.install(
            0,
            FlowRule::new(1, FlowMatch::any(), vec![Action::Output(b)]),
        )
        .unwrap();
        let _ = sw.process(a, frame(Ipv4Addr::new(1, 1, 1, 1)));
        let _ = sw.process(a, frame(Ipv4Addr::new(1, 1, 1, 1)));
        let cs = sw.cache_stats();
        assert_eq!(cs.misses, 1);
        assert_eq!(cs.hits, 1);
    }

    #[test]
    fn cookie_miss_counts_track_slow_path_only() {
        let (mut sw, a, b) = two_port_switch();
        sw.install(
            0,
            FlowRule::new(1, FlowMatch::any(), vec![Action::Output(b)]).with_cookie(9),
        )
        .unwrap();
        for _ in 0..5 {
            let _ = sw.process(a, frame(Ipv4Addr::new(1, 1, 1, 1)));
        }
        // First packet resolves (miss); the rest ride the cache.
        assert_eq!(sw.misses_by_cookie(9), 1);
        assert_eq!(sw.stats_by_cookie(9).0, 5);
        // A second flow key for the same cookie misses once more.
        let _ = sw.process(a, frame(Ipv4Addr::new(2, 2, 2, 2)));
        assert_eq!(sw.misses_by_cookie(9), 2);
        assert_eq!(sw.misses_by_cookie(1234), 0);
    }

    #[test]
    fn rule_install_invalidates_cache() {
        let (mut sw, a, b) = two_port_switch();
        sw.install(
            0,
            FlowRule::new(1, FlowMatch::any(), vec![Action::Output(b)]),
        )
        .unwrap();
        let _ = sw.process(a, frame(Ipv4Addr::new(1, 1, 1, 1)));
        // A higher-priority drop arrives; the cached entry must not be used.
        sw.install(0, FlowRule::new(10, FlowMatch::any(), vec![Action::Drop]))
            .unwrap();
        let out = sw.process(a, frame(Ipv4Addr::new(1, 1, 1, 1)));
        assert!(out.is_empty());
        assert_eq!(sw.stats().action_drops, 1);
    }

    #[test]
    fn dmac_rewrite_then_output() {
        // The MTS ingress chain: rewrite dmac to the tenant VF, emit on Gw.
        let (mut sw, a, gw) = two_port_switch();
        let tenant_mac = MacAddr::local(0x42);
        sw.install(
            0,
            FlowRule::new(
                10,
                FlowMatch::to_ip(Ipv4Addr::new(10, 0, 1, 1)),
                crate::actions::rewrite_and_output(tenant_mac, gw),
            ),
        )
        .unwrap();
        let out = sw.process(a, frame(Ipv4Addr::new(10, 0, 1, 1)));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, gw);
        assert_eq!(out[0].1.dst, tenant_mac);
    }

    #[test]
    fn normal_learns_then_unicasts() {
        let (mut sw, a, b) = two_port_switch();
        sw.install(0, FlowRule::new(1, FlowMatch::any(), vec![Action::Normal]))
            .unwrap();
        let mac_a = MacAddr::local(0xa);
        let mac_b = MacAddr::local(0xb);
        let f1 = Frame::udp_data(
            mac_a,
            mac_b,
            Ipv4Addr::new(1, 0, 0, 1),
            Ipv4Addr::new(1, 0, 0, 2),
            1,
            2,
            10,
        );
        // Unknown destination: flood to b.
        let out = sw.process(a, f1);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, b);
        assert_eq!(sw.learned(0, mac_a), Some(a));
        // Reply learns b and unicasts to a.
        let f2 = Frame::udp_data(
            mac_b,
            mac_a,
            Ipv4Addr::new(1, 0, 0, 2),
            Ipv4Addr::new(1, 0, 0, 1),
            2,
            1,
            10,
        );
        let out = sw.process(b, f2);
        assert_eq!(out, vec![(a, out[0].1.clone())]);
        assert_eq!(sw.learned(0, mac_b), Some(b));
    }

    #[test]
    fn goto_table_pipelines() {
        let (mut sw, a, b) = two_port_switch();
        sw.install(
            0,
            FlowRule::new(
                1,
                FlowMatch::any(),
                vec![
                    Action::SetEthSrc(MacAddr::local(7)),
                    Action::GotoTable(TableId(2)),
                ],
            ),
        )
        .unwrap();
        sw.install(
            2,
            FlowRule::new(1, FlowMatch::any(), vec![Action::Output(b)]),
        )
        .unwrap();
        let out = sw.process(a, frame(Ipv4Addr::new(1, 1, 1, 1)));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1.src, MacAddr::local(7));
    }

    #[test]
    fn backward_goto_is_a_drop() {
        let (mut sw, a, _) = two_port_switch();
        sw.install(
            1,
            FlowRule::new(1, FlowMatch::any(), vec![Action::GotoTable(TableId(0))]),
        )
        .unwrap();
        sw.install(
            0,
            FlowRule::new(1, FlowMatch::any(), vec![Action::GotoTable(TableId(1))]),
        )
        .unwrap();
        let out = sw.process(a, frame(Ipv4Addr::new(1, 1, 1, 1)));
        assert!(out.is_empty());
        assert_eq!(sw.stats().action_drops, 1);
    }

    #[test]
    fn ttl_expiry_drops() {
        let (mut sw, a, b) = two_port_switch();
        sw.install(
            0,
            FlowRule::new(1, FlowMatch::any(), vec![Action::DecTtl, Action::Output(b)]),
        )
        .unwrap();
        let mut f = frame(Ipv4Addr::new(1, 1, 1, 1));
        if let Payload::Ipv4(ip) = f.payload.make_mut() {
            ip.ttl = 1;
        }
        let out = sw.process(a, f);
        assert!(out.is_empty());
        assert_eq!(sw.stats().ttl_drops, 1);
        // A healthy TTL passes and is decremented.
        let out = sw.process(a, frame(Ipv4Addr::new(1, 1, 1, 1)));
        assert_eq!(out[0].1.ipv4().unwrap().ttl, 63);
    }

    #[test]
    fn vxlan_encap_decap_roundtrip() {
        let (mut sw, a, b) = two_port_switch();
        let vni = Vni::new(42);
        sw.install(
            0,
            FlowRule::new(
                10,
                FlowMatch::on_port(a),
                vec![
                    Action::VxlanEncap {
                        vni,
                        src_ip: Ipv4Addr::new(172, 16, 0, 1),
                        dst_ip: Ipv4Addr::new(172, 16, 0, 2),
                        src_mac: MacAddr::local(0xf1),
                        dst_mac: MacAddr::local(0xf2),
                    },
                    Action::Output(b),
                ],
            ),
        )
        .unwrap();
        let inner = frame(Ipv4Addr::new(10, 0, 1, 1));
        let inner_len = inner.wire_len();
        let out = sw.process(a, inner);
        assert_eq!(out.len(), 1);
        let encapped = &out[0].1;
        assert_eq!(encapped.dst, MacAddr::local(0xf2));
        assert!(encapped.wire_len() > inner_len);

        // Now decapsulate on the way back, matching on the tunnel id.
        let (mut sw2, a2, b2) = two_port_switch();
        sw2.install(
            0,
            FlowRule::new(
                10,
                FlowMatch::on_port(a2),
                vec![Action::VxlanDecap, Action::GotoTable(TableId(1))],
            ),
        )
        .unwrap();
        sw2.install(
            1,
            FlowRule::new(10, FlowMatch::any().and_tun(vni), vec![Action::Output(b2)]),
        )
        .unwrap();
        let out2 = sw2.process(a2, encapped.clone());
        assert_eq!(out2.len(), 1);
        assert_eq!(out2[0].1.dst_ip(), Some(Ipv4Addr::new(10, 0, 1, 1)));
    }

    #[test]
    fn decap_of_plain_frame_drops() {
        let (mut sw, a, _) = two_port_switch();
        sw.install(
            0,
            FlowRule::new(1, FlowMatch::any(), vec![Action::VxlanDecap]),
        )
        .unwrap();
        let out = sw.process(a, frame(Ipv4Addr::new(1, 1, 1, 1)));
        assert!(out.is_empty());
        assert_eq!(sw.stats().decap_drops, 1);
    }

    #[test]
    fn flood_skips_ingress() {
        let mut sw = VirtualSwitch::new("t");
        let a = sw.add_port("a", PortKind::Physical);
        let b = sw.add_port("b", PortKind::Physical);
        let c = sw.add_port("c", PortKind::Physical);
        sw.install(0, FlowRule::new(1, FlowMatch::any(), vec![Action::Flood]))
            .unwrap();
        let out = sw.process(a, frame(Ipv4Addr::new(1, 1, 1, 1)));
        let ports: Vec<PortNo> = out.iter().map(|(p, _)| *p).collect();
        assert_eq!(ports, vec![b, c]);
    }

    #[test]
    fn remove_port_purges_learning() {
        let (mut sw, a, b) = two_port_switch();
        sw.install(0, FlowRule::new(1, FlowMatch::any(), vec![Action::Normal]))
            .unwrap();
        let mac = MacAddr::local(0xa);
        let f = Frame::udp_data(
            mac,
            MacAddr::local(0xb),
            Ipv4Addr::new(1, 0, 0, 1),
            Ipv4Addr::new(1, 0, 0, 2),
            1,
            2,
            10,
        );
        sw.process(a, f);
        assert_eq!(sw.learned(0, mac), Some(a));
        sw.remove_port(a).unwrap();
        assert_eq!(sw.learned(0, mac), None);
        assert!(sw.remove_port(a).is_err());
        let _ = b;
    }

    #[test]
    fn cookie_removal_spans_tables() {
        let (mut sw, _, b) = two_port_switch();
        sw.install(
            0,
            FlowRule::new(1, FlowMatch::any(), vec![Action::Output(b)]).with_cookie(9),
        )
        .unwrap();
        sw.install(
            3,
            FlowRule::new(1, FlowMatch::any(), vec![Action::Drop]).with_cookie(9),
        )
        .unwrap();
        assert_eq!(sw.rule_count(), 2);
        assert_eq!(sw.remove_by_cookie(9), 2);
        assert_eq!(sw.rule_count(), 0);
    }
}
