//! The exact-match flow cache (OvS "megaflow" analogue).
//!
//! First packet of a flow takes the *slow path* (full pipeline traversal);
//! the resolved concrete operation list is cached under the packet's header
//! key so subsequent packets take the *fast path*. Any table modification
//! or MAC-learning update bumps a generation counter, invalidating stale
//! entries — the same revalidation discipline OvS applies.
//!
//! Cached programs are interned: the op list and cookie list live in shared
//! `Arc<[_]>` storage, deduplicated across cache entries, so a fast-path hit
//! hands back two reference-count bumps instead of cloning two `Vec`s, and a
//! thousand flows resolved to the same actions share one allocation.

use crate::switch::{Op, PortNo};
use mts_net::{Frame, Transport, UdpPayload, VXLAN_UDP_PORT};
use mts_sim::{FastHashMap, FastHashSet};
use std::sync::Arc;

/// The exact-match key: every field the pipeline may branch on.
///
/// For VXLAN-encapsulated packets the key also covers the VNI and the
/// inner 5-tuple — a pipeline with a decapsulation stage branches on those
/// (real OvS un-wildcards tunnel metadata and inner fields the same way).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FlowKey {
    in_port: PortNo,
    src: u64,
    dst: u64,
    vlan: u16, // 0 = untagged (VLAN 0 is never a real tag here)
    ethertype: u16,
    ip: Option<(u32, u32, u8, u16, u16)>,
    /// `(vni, inner src ip, inner dst ip, inner sport, inner dport)`.
    tunnel: Option<(u32, u32, u32, u16, u16)>,
}

impl FlowKey {
    /// Extracts the key from a frame at its ingress port.
    pub fn of(in_port: PortNo, frame: &Frame) -> Self {
        let mut tunnel = None;
        let ip = frame.ipv4().map(|p| {
            let (sport, dport) = match &p.transport {
                Transport::Udp(u) => {
                    if u.dport == VXLAN_UDP_PORT {
                        if let UdpPayload::Vxlan { vni, inner } = &u.payload {
                            let (is, id, isp, idp) = inner
                                .ipv4()
                                .map(|iip| {
                                    let (a, b) = match &iip.transport {
                                        Transport::Udp(x) => (x.sport, x.dport),
                                        Transport::Tcp(x) => (x.sport, x.dport),
                                        Transport::Raw { .. } => (0, 0),
                                    };
                                    (u32::from(iip.src), u32::from(iip.dst), a, b)
                                })
                                .unwrap_or((0, 0, 0, 0));
                            tunnel = Some((vni.value(), is, id, isp, idp));
                        }
                    }
                    (u.sport, u.dport)
                }
                Transport::Tcp(t) => (t.sport, t.dport),
                Transport::Raw { .. } => (0, 0),
            };
            (
                u32::from(p.src),
                u32::from(p.dst),
                p.proto().to_u8(),
                sport,
                dport,
            )
        });
        FlowKey {
            in_port,
            src: frame.src.as_u64(),
            dst: frame.dst.as_u64(),
            vlan: frame.vlan.map(|t| t.vid).unwrap_or(0),
            ethertype: frame.ethertype().to_u16(),
            ip,
            tunnel,
        }
    }
}

/// A resolved action program in shared storage: the concrete op list plus
/// the cookies of the rules it came from (for statistics push-back).
///
/// Cloning is two reference-count bumps; the underlying slices are shared
/// by the cache, the switch fast path and any in-flight lookups alike.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FlowProgram {
    ops: Arc<[Op]>,
    cookies: Arc<[u64]>,
}

impl FlowProgram {
    /// Builds a program in fresh (unshared, un-interned) storage.
    pub fn new(ops: Vec<Op>, cookies: Vec<u64>) -> Self {
        FlowProgram {
            ops: ops.into(),
            cookies: cookies.into(),
        }
    }

    /// The concrete operations to apply.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Cookies of the matched rules, for statistics credit.
    pub fn cookies(&self) -> &[u64] {
        &self.cookies
    }

    /// Whether two programs share both underlying allocations.
    pub fn shares_storage_with(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.ops, &other.ops) && Arc::ptr_eq(&self.cookies, &other.cookies)
    }
}

struct CacheEntry {
    prog: FlowProgram,
    generation: u64,
}

/// Statistics of the flow cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Fast-path hits.
    pub hits: u64,
    /// Misses (slow-path traversals).
    pub misses: u64,
    /// Hits rejected because the entry was stale.
    pub stale: u64,
    /// Whole-cache flushes due to capacity.
    pub flushes: u64,
}

/// A bounded exact-match cache of resolved operation lists.
pub struct FlowCache {
    map: FastHashMap<FlowKey, CacheEntry>,
    /// Interning pools deduplicating program storage across entries. Never
    /// iterated (lookup only), so they introduce no ordering dependence.
    ops_pool: FastHashSet<Arc<[Op]>>,
    cookie_pool: FastHashSet<Arc<[u64]>>,
    capacity: usize,
    generation: u64,
    stats: CacheStats,
}

impl FlowCache {
    /// Creates a cache bounded to `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        FlowCache {
            map: FastHashMap::default(),
            ops_pool: FastHashSet::default(),
            cookie_pool: FastHashSet::default(),
            capacity: capacity.max(16),
            generation: 0,
            stats: CacheStats::default(),
        }
    }

    /// Returns cache statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Returns the current entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Invalidates all entries (table or learning state changed).
    pub fn bump_generation(&mut self) {
        self.generation += 1;
    }

    /// Looks up the resolved program for a key, if fresh.
    ///
    /// A hit returns a shared handle (two reference-count bumps); nothing
    /// is cloned or allocated on the fast path.
    pub fn get(&mut self, key: &FlowKey) -> Option<FlowProgram> {
        match self.map.get(key) {
            Some(e) if e.generation == self.generation => {
                self.stats.hits += 1;
                Some(e.prog.clone())
            }
            Some(_) => {
                self.stats.stale += 1;
                self.stats.misses += 1;
                self.map.remove(key);
                None
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts a resolved operation list (plus matched-rule cookies) for a
    /// key; returns the interned program for immediate use.
    pub fn insert(&mut self, key: FlowKey, ops: Vec<Op>, cookies: Vec<u64>) -> FlowProgram {
        if self.map.len() >= self.capacity {
            // Capacity flush, as OvS does when revalidation falls behind.
            self.map.clear();
            self.ops_pool.clear();
            self.cookie_pool.clear();
            self.stats.flushes += 1;
        }
        let prog = FlowProgram {
            ops: Self::intern(&mut self.ops_pool, ops),
            cookies: Self::intern(&mut self.cookie_pool, cookies),
        };
        self.map.insert(
            key,
            CacheEntry {
                prog: prog.clone(),
                generation: self.generation,
            },
        );
        prog
    }

    /// Deduplicates a list into pool-shared storage.
    fn intern<T>(pool: &mut FastHashSet<Arc<[T]>>, items: Vec<T>) -> Arc<[T]>
    where
        T: std::hash::Hash + Eq,
    {
        if let Some(shared) = pool.get(items.as_slice()) {
            return shared.clone();
        }
        let shared: Arc<[T]> = items.into();
        pool.insert(shared.clone());
        shared
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mts_net::MacAddr;
    use std::net::Ipv4Addr;

    fn frame(dport: u16) -> Frame {
        Frame::udp_data(
            MacAddr::local(1),
            MacAddr::local(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1,
            dport,
            10,
        )
    }

    #[test]
    fn key_distinguishes_flows_not_packets() {
        let a1 = FlowKey::of(PortNo(1), &frame(80));
        let a2 = FlowKey::of(PortNo(1), &frame(80));
        let b = FlowKey::of(PortNo(1), &frame(81));
        let c = FlowKey::of(PortNo(2), &frame(80));
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_ne!(a1, c);
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let mut c = FlowCache::new(100);
        let k = FlowKey::of(PortNo(1), &frame(80));
        assert!(c.get(&k).is_none());
        c.insert(k, vec![Op::Emit(PortNo(3))], vec![7]);
        let hit = c.get(&k).expect("fresh entry");
        assert_eq!(hit.ops(), &[Op::Emit(PortNo(3))]);
        assert_eq!(hit.cookies(), &[7]);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn hits_share_storage_with_the_entry() {
        let mut c = FlowCache::new(100);
        let k = FlowKey::of(PortNo(1), &frame(80));
        let inserted = c.insert(k, vec![Op::Emit(PortNo(3))], vec![7]);
        let h1 = c.get(&k).unwrap();
        let h2 = c.get(&k).unwrap();
        assert!(h1.shares_storage_with(&inserted));
        assert!(h1.shares_storage_with(&h2));
    }

    #[test]
    fn equal_programs_intern_to_one_allocation() {
        let mut c = FlowCache::new(100);
        let k1 = FlowKey::of(PortNo(1), &frame(80));
        let k2 = FlowKey::of(PortNo(1), &frame(81));
        let p1 = c.insert(k1, vec![Op::Emit(PortNo(3))], vec![7]);
        let p2 = c.insert(k2, vec![Op::Emit(PortNo(3))], vec![7]);
        assert!(p1.shares_storage_with(&p2));
        // Different programs get their own storage.
        let k3 = FlowKey::of(PortNo(1), &frame(82));
        let p3 = c.insert(k3, vec![Op::Emit(PortNo(4))], vec![7]);
        assert!(!p3.shares_storage_with(&p1));
    }

    #[test]
    fn generation_bump_invalidates() {
        let mut c = FlowCache::new(100);
        let k = FlowKey::of(PortNo(1), &frame(80));
        c.insert(k, vec![Op::Emit(PortNo(3))], Vec::new());
        c.bump_generation();
        assert!(c.get(&k).is_none());
        assert_eq!(c.stats().stale, 1);
        // Re-inserted entries are fresh again.
        c.insert(k, vec![Op::Emit(PortNo(4))], Vec::new());
        let hit = c.get(&k).expect("fresh entry");
        assert_eq!(hit.ops(), &[Op::Emit(PortNo(4))]);
        assert!(hit.cookies().is_empty());
    }

    #[test]
    fn capacity_flush() {
        let mut c = FlowCache::new(16);
        for i in 0..17 {
            c.insert(FlowKey::of(PortNo(i), &frame(80)), vec![], vec![]);
        }
        assert_eq!(c.stats().flushes, 1);
        assert!(c.len() <= 16);
    }
}
