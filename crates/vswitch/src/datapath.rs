//! Per-packet CPU cost models for the two datapaths.
//!
//! The paper evaluates two vswitch datapaths: the OvS *kernel* datapath
//! (interrupt-driven, Baseline/Level-1/2) and the *DPDK* user-space
//! poll-mode datapath (Level-3). The constants here, combined with the
//! vhost/VF port costs in `mts-host`, produce the paper's throughput
//! anchors: ≈1 Mpps/core for the kernel path (Fig. 5d) and ≈7–8 Mpps/core
//! for DPDK (Fig. 5g, line rate with 2 cores). See DESIGN.md §3.

use mts_net::Frame;
use mts_sim::Dur;
use serde::{Deserialize, Serialize};

/// Which datapath a vswitch instance runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Serialize, Deserialize)]
pub enum DatapathKind {
    /// The kernel datapath: interrupt-driven, NAPI batching.
    Kernel,
    /// The DPDK user-space datapath: poll-mode, burst 32.
    Dpdk,
}

/// Per-packet and per-batch CPU costs of a datapath.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DatapathCosts {
    /// Cost of a cache-hit (fast path) lookup + action execution.
    pub cache_hit: Dur,
    /// Cost of a slow-path traversal (full pipeline, cache insert).
    pub slow_path: Dur,
    /// Additional per-byte cost (header/payload touching), picoseconds.
    pub ps_per_byte: u64,
    /// Per-VF-port packet cost in the driver (rx or tx, each way).
    pub vf_rx_tx: Dur,
    /// Per-batch overhead: interrupt + NAPI entry for the kernel path, or
    /// one poll-loop iteration for DPDK.
    pub per_batch: Dur,
    /// DPDK only: cost to poll one port's rx queue in an iteration, paid
    /// per polled port — this is why one core polling many ports saturates
    /// early (Sec. 4.1).
    pub poll_port: Dur,
    /// Receive burst size (DPDK burst / NAPI budget).
    pub burst: usize,
}

impl DatapathCosts {
    /// Calibrated costs for the kernel datapath.
    pub fn kernel() -> Self {
        DatapathCosts {
            cache_hit: Dur::nanos(650),
            slow_path: Dur::micros(8),
            ps_per_byte: 300,
            vf_rx_tx: Dur::nanos(180),
            per_batch: Dur::micros(2),
            poll_port: Dur::ZERO,
            burst: 64,
        }
    }

    /// Calibrated costs for the DPDK poll-mode datapath.
    pub fn dpdk() -> Self {
        DatapathCosts {
            cache_hit: Dur::nanos(70),
            slow_path: Dur::micros(3),
            ps_per_byte: 15,
            vf_rx_tx: Dur::nanos(25),
            per_batch: Dur::nanos(50),
            poll_port: Dur::nanos(35),
            burst: 32,
        }
    }

    /// Returns the calibrated costs for a datapath kind.
    pub fn for_kind(kind: DatapathKind) -> Self {
        match kind {
            DatapathKind::Kernel => Self::kernel(),
            DatapathKind::Dpdk => Self::dpdk(),
        }
    }

    /// Per-packet switching cost for a frame (fast or slow path).
    pub fn packet_cost(&self, frame: &Frame, cache_hit: bool) -> Dur {
        self.packet_cost_amortized(frame, cache_hit, 1)
    }

    /// Per-packet cost with the fixed component amortized over `factor`
    /// frames — models TSO/GSO: bulk TCP traverses the datapath as
    /// super-segments, so descriptor/lookup costs are paid once per ~8
    /// MTU-frames while byte-touching costs remain per byte.
    pub fn packet_cost_amortized(&self, frame: &Frame, cache_hit: bool, factor: u64) -> Dur {
        let base = if cache_hit {
            self.cache_hit
        } else {
            self.slow_path
        };
        base / factor.max(1) + Dur::nanos(self.ps_per_byte * u64::from(frame.wire_len()) / 1000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mts_net::MacAddr;
    use std::net::Ipv4Addr;

    fn frame(wire: u32) -> Frame {
        Frame::udp_probe(
            MacAddr::local(1),
            MacAddr::local(2),
            Ipv4Addr::new(1, 0, 0, 1),
            Ipv4Addr::new(1, 0, 0, 2),
            7,
            0,
            wire,
        )
    }

    #[test]
    fn kernel_is_about_one_mpps_per_core() {
        let c = DatapathCosts::kernel();
        let per_pkt = c.packet_cost(&frame(64), true) + c.vf_rx_tx;
        // One packet in ~0.9-1.3us => ~0.8-1.1 Mpps; the batch overhead
        // amortized over 64-packet batches adds ~31ns.
        let total_ns = per_pkt.as_nanos() + c.per_batch.as_nanos() / 64;
        let mpps = 1e9 / total_ns as f64 / 1e6;
        assert!((0.7..=1.2).contains(&mpps), "kernel mpps {mpps}");
    }

    #[test]
    fn dpdk_is_an_order_of_magnitude_faster() {
        let k = DatapathCosts::kernel();
        let d = DatapathCosts::dpdk();
        let fk = k.packet_cost(&frame(64), true);
        let fd = d.packet_cost(&frame(64), true);
        assert!(fk.as_nanos() > 6 * fd.as_nanos());
        // One DPDK core forwards ~7-9 Mpps p2p (needs 2 cores for 14.4).
        let per_pkt =
            fd + d.vf_rx_tx * 2 + Dur::nanos(d.per_batch.as_nanos() / 32) + d.poll_port * 2 / 32;
        let mpps = 1e9 / per_pkt.as_nanos() as f64 / 1e6;
        assert!((6.0..=10.0).contains(&mpps), "dpdk mpps {mpps}");
    }

    #[test]
    fn byte_cost_scales_with_frame_size() {
        let c = DatapathCosts::kernel();
        let small = c.packet_cost(&frame(64), true);
        let big = c.packet_cost(&frame(1500), true);
        assert!(big > small);
        assert_eq!(
            (big - small).as_nanos(),
            300 * 1500 / 1000 - 300 * 64 / 1000
        );
    }

    #[test]
    fn slow_path_dominates_misses() {
        let c = DatapathCosts::dpdk();
        assert!(c.packet_cost(&frame(64), false) > c.packet_cost(&frame(64), true) * 10);
    }

    #[test]
    fn for_kind_dispatches() {
        assert_eq!(
            DatapathCosts::for_kind(DatapathKind::Kernel),
            DatapathCosts::kernel()
        );
        assert_eq!(
            DatapathCosts::for_kind(DatapathKind::Dpdk),
            DatapathCosts::dpdk()
        );
    }
}
