//! Priority-ordered flow tables.

use crate::actions::Action;
use crate::flow::FlowMatch;
use crate::switch::PortNo;
use mts_net::{Frame, Vni};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a flow table within a pipeline.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct TableId(pub u8);

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "table{}", self.0)
    }
}

/// Per-rule statistics, as OpenFlow exposes for accounting/billing — the
/// paper notes MTS enables billing virtual networking at finer granularity
/// than "a simple flow rule" (Sec. 6); these are the flow-rule baseline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowStats {
    /// Packets that hit this rule.
    pub packets: u64,
    /// Bytes (wire length) that hit this rule.
    pub bytes: u64,
}

/// A flow rule: match + priority + action list.
///
/// # Precedence
///
/// Higher `priority` wins. Ties between overlapping rules of equal priority
/// break *deterministically towards the earlier-inserted rule*, regardless
/// of how insertions of other priorities are interleaved:
/// [`FlowTable::add`] places a new rule after every existing rule of the
/// same priority (`partition_point` on `priority >=`), and lookup scans in
/// that stored order. The `mts-isocheck` static analyzer models exactly
/// this order, so a deployment it proves safe stays safe at runtime.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct FlowRule {
    /// Higher priorities win; ties break towards earlier insertion.
    pub priority: u16,
    /// The match.
    pub m: FlowMatch,
    /// Actions applied on match, in order.
    pub actions: Vec<Action>,
    /// Opaque controller cookie for bulk deletion.
    pub cookie: u64,
    /// Hit statistics.
    pub stats: FlowStats,
}

impl FlowRule {
    /// Creates a rule with cookie 0.
    pub fn new(priority: u16, m: FlowMatch, actions: Vec<Action>) -> Self {
        FlowRule {
            priority,
            m,
            actions,
            cookie: 0,
            stats: FlowStats::default(),
        }
    }

    /// Builder: sets the controller cookie.
    pub fn with_cookie(mut self, cookie: u64) -> Self {
        self.cookie = cookie;
        self
    }
}

/// One flow table: rules kept sorted by descending priority.
#[derive(Clone, Debug, Default)]
pub struct FlowTable {
    rules: Vec<FlowRule>,
    lookups: u64,
    misses: u64,
}

impl FlowTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        FlowTable::default()
    }

    /// Number of rules installed.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Returns whether the table has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Total lookups performed.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Lookups that matched no rule.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Installs a rule, keeping priority order (stable for equal priority:
    /// earlier-inserted rules are checked first).
    pub fn add(&mut self, rule: FlowRule) {
        let pos = self.rules.partition_point(|r| r.priority >= rule.priority);
        self.rules.insert(pos, rule);
    }

    /// Removes all rules with the given cookie; returns how many.
    pub fn remove_by_cookie(&mut self, cookie: u64) -> usize {
        let before = self.rules.len();
        self.rules.retain(|r| r.cookie != cookie);
        before - self.rules.len()
    }

    /// Removes every rule.
    pub fn clear(&mut self) {
        self.rules.clear();
    }

    /// Iterates rules in match order.
    pub fn rules(&self) -> impl Iterator<Item = &FlowRule> {
        self.rules.iter()
    }

    /// Finds the highest-priority matching rule, updating statistics.
    pub fn lookup(
        &mut self,
        in_port: PortNo,
        frame: &Frame,
        tun_id: Option<Vni>,
    ) -> Option<&FlowRule> {
        self.lookups += 1;
        let idx = self
            .rules
            .iter()
            .position(|r| r.m.matches(in_port, frame, tun_id));
        match idx {
            Some(i) => {
                let wire = u64::from(frame.wire_len());
                let r = &mut self.rules[i];
                r.stats.packets += 1;
                r.stats.bytes += wire;
                Some(&self.rules[i])
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Finds the highest-priority matching rule without touching statistics.
    pub fn peek(&self, in_port: PortNo, frame: &Frame, tun_id: Option<Vni>) -> Option<&FlowRule> {
        self.rules
            .iter()
            .find(|r| r.m.matches(in_port, frame, tun_id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mts_net::MacAddr;
    use std::net::Ipv4Addr;

    fn frame(dst_ip: Ipv4Addr) -> Frame {
        Frame::udp_data(
            MacAddr::local(1),
            MacAddr::local(2),
            Ipv4Addr::new(10, 0, 0, 1),
            dst_ip,
            1,
            2,
            50,
        )
    }

    #[test]
    fn priority_order_wins() {
        let mut t = FlowTable::new();
        t.add(FlowRule::new(1, FlowMatch::any(), vec![Action::Drop]));
        t.add(FlowRule::new(
            10,
            FlowMatch::to_ip(Ipv4Addr::new(10, 0, 1, 1)),
            vec![Action::Output(PortNo(5))],
        ));
        let hit = t
            .lookup(PortNo(0), &frame(Ipv4Addr::new(10, 0, 1, 1)), None)
            .unwrap();
        assert_eq!(hit.actions, vec![Action::Output(PortNo(5))]);
        let miss = t
            .lookup(PortNo(0), &frame(Ipv4Addr::new(9, 9, 9, 9)), None)
            .unwrap();
        assert_eq!(miss.actions, vec![Action::Drop]);
    }

    #[test]
    fn equal_priority_is_first_inserted() {
        let mut t = FlowTable::new();
        t.add(FlowRule::new(
            5,
            FlowMatch::any(),
            vec![Action::Output(PortNo(1))],
        ));
        t.add(FlowRule::new(
            5,
            FlowMatch::any(),
            vec![Action::Output(PortNo(2))],
        ));
        let hit = t
            .lookup(PortNo(0), &frame(Ipv4Addr::new(1, 1, 1, 1)), None)
            .unwrap();
        assert_eq!(hit.actions, vec![Action::Output(PortNo(1))]);
    }

    #[test]
    fn equal_priority_tie_break_survives_interleaved_inserts() {
        // Regression: insertion order within a priority band must be kept
        // even when rules of other priorities are added in between.
        let mut t = FlowTable::new();
        let rule = |prio: u16, cookie: u64| {
            FlowRule::new(prio, FlowMatch::any(), vec![Action::Drop]).with_cookie(cookie)
        };
        t.add(rule(5, 50));
        t.add(rule(7, 70));
        t.add(rule(5, 51));
        t.add(rule(7, 71));
        t.add(rule(6, 60));
        let order: Vec<u64> = t.rules().map(|r| r.cookie).collect();
        assert_eq!(order, vec![70, 71, 60, 50, 51]);
        // The first-inserted rule of the highest priority wins the lookup.
        let hit = t
            .lookup(PortNo(0), &frame(Ipv4Addr::new(1, 1, 1, 1)), None)
            .unwrap();
        assert_eq!(hit.cookie, 70);
    }

    #[test]
    fn stats_accumulate() {
        let mut t = FlowTable::new();
        t.add(FlowRule::new(1, FlowMatch::any(), vec![Action::Normal]));
        let f = frame(Ipv4Addr::new(1, 1, 1, 1));
        let wire = u64::from(f.wire_len());
        t.lookup(PortNo(0), &f, None);
        t.lookup(PortNo(0), &f, None);
        let r = t.rules().next().unwrap();
        assert_eq!(r.stats.packets, 2);
        assert_eq!(r.stats.bytes, 2 * wire);
        assert_eq!(t.lookups(), 2);
        assert_eq!(t.misses(), 0);
    }

    #[test]
    fn miss_counting_and_empty_table() {
        let mut t = FlowTable::new();
        assert!(t
            .lookup(PortNo(0), &frame(Ipv4Addr::new(1, 1, 1, 1)), None)
            .is_none());
        assert_eq!(t.misses(), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn cookie_deletion() {
        let mut t = FlowTable::new();
        t.add(FlowRule::new(1, FlowMatch::any(), vec![Action::Drop]).with_cookie(7));
        t.add(FlowRule::new(2, FlowMatch::any(), vec![Action::Drop]).with_cookie(7));
        t.add(FlowRule::new(3, FlowMatch::any(), vec![Action::Drop]).with_cookie(8));
        assert_eq!(t.remove_by_cookie(7), 2);
        assert_eq!(t.len(), 1);
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn peek_does_not_count() {
        let mut t = FlowTable::new();
        t.add(FlowRule::new(1, FlowMatch::any(), vec![Action::Drop]));
        assert!(t
            .peek(PortNo(0), &frame(Ipv4Addr::new(1, 1, 1, 1)), None)
            .is_some());
        assert_eq!(t.lookups(), 0);
        assert_eq!(t.rules().next().unwrap().stats.packets, 0);
    }
}
