//! Flow-table virtual switch — the Open vSwitch analogue of the MTS stack.
//!
//! The paper's Baseline and all MTS security levels run per-tenant *logical
//! datapaths* on this switch: multi-table OpenFlow-style pipelines with
//! priority matching, header-rewrite actions, a MAC-learning `NORMAL`
//! action, VXLAN encap/decap, and an exact-match *megaflow* cache modelled
//! after OvS's fast path. Per-packet CPU costs for the kernel and DPDK
//! (user-space, poll-mode) datapaths live in [`datapath`]; the runtime in
//! `mts-core` charges them to simulated cores.
//!
//! Modules:
//!
//! - [`flow`] — match structures ([`FlowMatch`], [`Ipv4Prefix`], VLAN match).
//! - [`actions`] — the action set applied by matching rules.
//! - [`table`] — priority-ordered flow tables with rule statistics.
//! - [`cache`] — the exact-match flow cache (fast path).
//! - [`switch`] — the switch itself: ports, pipeline execution, `NORMAL`.
//! - [`datapath`] — per-packet cost models (kernel vs DPDK).

pub mod actions;
pub mod cache;
pub mod datapath;
pub mod flow;
pub mod switch;
pub mod table;

pub use actions::Action;
pub use cache::{CacheStats, FlowCache, FlowKey, FlowProgram};
pub use datapath::{DatapathCosts, DatapathKind};
pub use flow::{FlowMatch, Ipv4Prefix, VlanMatch};
pub use switch::{PortKind, PortNo, SwitchStats, VirtualSwitch};
pub use table::{FlowRule, FlowTable, TableId};
