//! Flow match structures.
//!
//! A [`FlowMatch`] is a set of optional constraints over packet header
//! fields — unset fields are wildcards. This mirrors the OpenFlow match the
//! paper's controllers program into per-tenant logical datapaths; the MTS
//! controller's ingress/egress chain rules (Fig. 3) are built from these.

use crate::switch::PortNo;
use mts_net::{EtherType, Frame, IpProto, MacAddr, Transport, Vni};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// An IPv4 prefix, e.g. `10.0.1.0/24`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Ipv4Prefix {
    /// Network address (host bits zeroed on construction).
    pub net: Ipv4Addr,
    /// Prefix length, 0..=32.
    pub len: u8,
}

impl Ipv4Prefix {
    /// Creates a prefix, zeroing host bits and clamping the length to 32.
    pub fn new(addr: Ipv4Addr, len: u8) -> Self {
        let len = len.min(32);
        let mask = Self::mask_of(len);
        Ipv4Prefix {
            net: Ipv4Addr::from(u32::from(addr) & mask),
            len,
        }
    }

    /// A host route (`/32`).
    pub fn host(addr: Ipv4Addr) -> Self {
        Ipv4Prefix::new(addr, 32)
    }

    fn mask_of(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - u32::from(len))
        }
    }

    /// Returns whether `addr` lies within this prefix.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        u32::from(addr) & Self::mask_of(self.len) == u32::from(self.net)
    }

    /// Returns whether every address of `other` lies within this prefix.
    pub fn contains_prefix(&self, other: &Ipv4Prefix) -> bool {
        self.len <= other.len && self.contains(other.net)
    }

    /// Returns whether the two prefixes share at least one address.
    ///
    /// Two prefixes overlap exactly when one contains the other (prefixes
    /// form a laminar family: partial overlap is impossible).
    pub fn overlaps(&self, other: &Ipv4Prefix) -> bool {
        let len = self.len.min(other.len);
        let mask = Self::mask_of(len);
        u32::from(self.net) & mask == u32::from(other.net) & mask
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.net, self.len)
    }
}

/// VLAN matching: any, explicitly untagged, or a specific tag.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub enum VlanMatch {
    /// Match tagged and untagged frames alike.
    #[default]
    Any,
    /// Match only untagged frames.
    Untagged,
    /// Match frames carrying this VLAN id.
    Tag(u16),
}

impl VlanMatch {
    /// Returns whether a frame's VLAN state satisfies this match.
    pub fn matches(self, vlan: Option<u16>) -> bool {
        match self {
            VlanMatch::Any => true,
            VlanMatch::Untagged => vlan.is_none(),
            VlanMatch::Tag(v) => vlan == Some(v),
        }
    }
}

/// An OpenFlow-style match; `None` fields are wildcards.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub struct FlowMatch {
    /// Ingress port.
    pub in_port: Option<PortNo>,
    /// Ethernet source.
    pub eth_src: Option<MacAddr>,
    /// Ethernet destination.
    pub eth_dst: Option<MacAddr>,
    /// VLAN constraint.
    pub vlan: VlanMatch,
    /// EtherType.
    pub ethertype: Option<EtherType>,
    /// IPv4 source prefix.
    pub ip_src: Option<Ipv4Prefix>,
    /// IPv4 destination prefix.
    pub ip_dst: Option<Ipv4Prefix>,
    /// IP protocol.
    pub ip_proto: Option<IpProto>,
    /// Transport source port.
    pub l4_src: Option<u16>,
    /// Transport destination port.
    pub l4_dst: Option<u16>,
    /// Tunnel id (matches only packets that were decapsulated, whose VNI is
    /// carried in pipeline metadata).
    pub tun_id: Option<Vni>,
}

impl FlowMatch {
    /// The match-everything wildcard.
    pub fn any() -> Self {
        FlowMatch::default()
    }

    /// Matches a specific ingress port.
    pub fn on_port(port: PortNo) -> Self {
        FlowMatch {
            in_port: Some(port),
            ..FlowMatch::default()
        }
    }

    /// Matches an exact destination IPv4 address.
    pub fn to_ip(dst: Ipv4Addr) -> Self {
        FlowMatch {
            ethertype: Some(EtherType::Ipv4),
            ip_dst: Some(Ipv4Prefix::host(dst)),
            ..FlowMatch::default()
        }
    }

    /// Matches an exact destination MAC address.
    pub fn to_mac(dst: MacAddr) -> Self {
        FlowMatch {
            eth_dst: Some(dst),
            ..FlowMatch::default()
        }
    }

    /// Builder: also require the given ingress port.
    pub fn and_port(mut self, port: PortNo) -> Self {
        self.in_port = Some(port);
        self
    }

    /// Builder: also require the given tunnel id.
    pub fn and_tun(mut self, vni: Vni) -> Self {
        self.tun_id = Some(vni);
        self
    }

    /// Returns whether this match accepts the frame.
    ///
    /// `tun_id` is pipeline metadata set by a decapsulation action earlier
    /// in the pipeline (`None` for packets that were not decapsulated).
    pub fn matches(&self, in_port: PortNo, frame: &Frame, tun_id: Option<Vni>) -> bool {
        if self.in_port.is_some_and(|p| p != in_port) {
            return false;
        }
        if self.eth_src.is_some_and(|m| m != frame.src) {
            return false;
        }
        if self.eth_dst.is_some_and(|m| m != frame.dst) {
            return false;
        }
        if !self.vlan.matches(frame.vlan.map(|t| t.vid)) {
            return false;
        }
        if self.ethertype.is_some_and(|e| e != frame.ethertype()) {
            return false;
        }
        if self.tun_id.is_some() && self.tun_id != tun_id {
            return false;
        }
        let needs_ip = self.ip_src.is_some()
            || self.ip_dst.is_some()
            || self.ip_proto.is_some()
            || self.l4_src.is_some()
            || self.l4_dst.is_some();
        if !needs_ip {
            return true;
        }
        let Some(ip) = frame.ipv4() else {
            return false;
        };
        if self.ip_src.is_some_and(|p| !p.contains(ip.src)) {
            return false;
        }
        if self.ip_dst.is_some_and(|p| !p.contains(ip.dst)) {
            return false;
        }
        if self.ip_proto.is_some_and(|p| p != ip.proto()) {
            return false;
        }
        let (sport, dport) = match &ip.transport {
            Transport::Udp(u) => (u.sport, u.dport),
            Transport::Tcp(t) => (t.sport, t.dport),
            Transport::Raw { .. } => {
                return self.l4_src.is_none() && self.l4_dst.is_none();
            }
        };
        if self.l4_src.is_some_and(|p| p != sport) {
            return false;
        }
        if self.l4_dst.is_some_and(|p| p != dport) {
            return false;
        }
        true
    }

    /// Conservative syntactic subsumption: `true` guarantees that every
    /// frame `other` accepts is also accepted by `self`.
    ///
    /// Used by the `mts-isocheck` static analyzer to report shadowed rules:
    /// if a higher-precedence rule's match subsumes a lower one's, the lower
    /// rule can never fire. The check is field-wise (wildcard subsumes
    /// anything, exact values must agree, prefixes must nest), so it can
    /// return `false` for semantically subsumed pairs that are written with
    /// different field combinations — never the reverse.
    pub fn subsumes(&self, other: &FlowMatch) -> bool {
        fn field<T: PartialEq>(a: &Option<T>, b: &Option<T>) -> bool {
            match (a, b) {
                (None, _) => true,
                (Some(x), Some(y)) => x == y,
                (Some(_), None) => false,
            }
        }
        fn prefix(a: &Option<Ipv4Prefix>, b: &Option<Ipv4Prefix>) -> bool {
            match (a, b) {
                (None, _) => true,
                (Some(x), Some(y)) => x.contains_prefix(y),
                (Some(_), None) => false,
            }
        }
        let vlan_ok = match (self.vlan, other.vlan) {
            (VlanMatch::Any, _) => true,
            (a, b) => a == b,
        };
        field(&self.in_port, &other.in_port)
            && field(&self.eth_src, &other.eth_src)
            && field(&self.eth_dst, &other.eth_dst)
            && vlan_ok
            && field(&self.ethertype, &other.ethertype)
            && prefix(&self.ip_src, &other.ip_src)
            && prefix(&self.ip_dst, &other.ip_dst)
            && field(&self.ip_proto, &other.ip_proto)
            && field(&self.l4_src, &other.l4_src)
            && field(&self.l4_dst, &other.l4_dst)
            && field(&self.tun_id, &other.tun_id)
    }

    /// Counts the constrained fields — a rough specificity measure used in
    /// diagnostics (priority, not specificity, decides precedence).
    pub fn specificity(&self) -> u32 {
        let mut n = 0;
        n += u32::from(self.in_port.is_some());
        n += u32::from(self.eth_src.is_some());
        n += u32::from(self.eth_dst.is_some());
        n += u32::from(self.vlan != VlanMatch::Any);
        n += u32::from(self.ethertype.is_some());
        n += u32::from(self.ip_src.is_some());
        n += u32::from(self.ip_dst.is_some());
        n += u32::from(self.ip_proto.is_some());
        n += u32::from(self.l4_src.is_some());
        n += u32::from(self.l4_dst.is_some());
        n += u32::from(self.tun_id.is_some());
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> Frame {
        Frame::udp_data(
            MacAddr::local(1),
            MacAddr::local(2),
            Ipv4Addr::new(10, 0, 0, 5),
            Ipv4Addr::new(10, 0, 1, 9),
            1111,
            2222,
            100,
        )
    }

    #[test]
    fn prefix_zeroes_host_bits_and_contains() {
        let p = Ipv4Prefix::new(Ipv4Addr::new(10, 0, 1, 200), 24);
        assert_eq!(p.net, Ipv4Addr::new(10, 0, 1, 0));
        assert!(p.contains(Ipv4Addr::new(10, 0, 1, 9)));
        assert!(!p.contains(Ipv4Addr::new(10, 0, 2, 9)));
        let all = Ipv4Prefix::new(Ipv4Addr::new(1, 2, 3, 4), 0);
        assert!(all.contains(Ipv4Addr::new(255, 255, 255, 255)));
        let host = Ipv4Prefix::host(Ipv4Addr::new(10, 0, 0, 5));
        assert!(host.contains(Ipv4Addr::new(10, 0, 0, 5)));
        assert!(!host.contains(Ipv4Addr::new(10, 0, 0, 6)));
        assert_eq!(Ipv4Prefix::new(Ipv4Addr::new(1, 1, 1, 1), 99).len, 32);
    }

    #[test]
    fn prefix_containment_and_overlap() {
        let wide = Ipv4Prefix::new(Ipv4Addr::new(10, 0, 0, 0), 16);
        let narrow = Ipv4Prefix::new(Ipv4Addr::new(10, 0, 1, 0), 24);
        let other = Ipv4Prefix::new(Ipv4Addr::new(10, 1, 0, 0), 16);
        assert!(wide.contains_prefix(&narrow));
        assert!(!narrow.contains_prefix(&wide));
        assert!(wide.contains_prefix(&wide));
        assert!(wide.overlaps(&narrow));
        assert!(narrow.overlaps(&wide));
        assert!(!wide.overlaps(&other));
        let all = Ipv4Prefix::new(Ipv4Addr::new(0, 0, 0, 0), 0);
        assert!(all.contains_prefix(&other));
        assert!(all.overlaps(&narrow));
    }

    #[test]
    fn subsumption_is_fieldwise() {
        let general = FlowMatch {
            ethertype: Some(EtherType::Ipv4),
            ip_dst: Some(Ipv4Prefix::new(Ipv4Addr::new(10, 0, 0, 0), 8)),
            ..FlowMatch::default()
        };
        let specific = FlowMatch::to_ip(Ipv4Addr::new(10, 0, 1, 9)).and_port(PortNo(3));
        assert!(FlowMatch::any().subsumes(&general));
        assert!(FlowMatch::any().subsumes(&specific));
        assert!(general.subsumes(&specific));
        assert!(!specific.subsumes(&general));
        let untagged = FlowMatch {
            vlan: VlanMatch::Untagged,
            ..FlowMatch::default()
        };
        assert!(FlowMatch::any().subsumes(&untagged));
        assert!(!untagged.subsumes(&FlowMatch::any()));
        assert!(untagged.subsumes(&untagged));
    }

    #[test]
    fn wildcard_matches_everything() {
        assert!(FlowMatch::any().matches(PortNo(1), &frame(), None));
        assert_eq!(FlowMatch::any().specificity(), 0);
    }

    #[test]
    fn field_constraints_filter() {
        let f = frame();
        let m = FlowMatch::to_ip(Ipv4Addr::new(10, 0, 1, 9));
        assert!(m.matches(PortNo(1), &f, None));
        let m = FlowMatch::to_ip(Ipv4Addr::new(10, 0, 1, 10));
        assert!(!m.matches(PortNo(1), &f, None));
        let m = FlowMatch::on_port(PortNo(3));
        assert!(m.matches(PortNo(3), &f, None));
        assert!(!m.matches(PortNo(4), &f, None));
        let m = FlowMatch::to_mac(MacAddr::local(2)).and_port(PortNo(7));
        assert!(m.matches(PortNo(7), &f, None));
        assert!(!m.matches(PortNo(8), &f, None));
    }

    #[test]
    fn vlan_matching_modes() {
        let f = frame();
        let tagged = frame().with_vlan(100);
        assert!(VlanMatch::Any.matches(None));
        assert!(VlanMatch::Any.matches(Some(1)));
        let m = FlowMatch {
            vlan: VlanMatch::Untagged,
            ..FlowMatch::default()
        };
        assert!(m.matches(PortNo(0), &f, None));
        assert!(!m.matches(PortNo(0), &tagged, None));
        let m = FlowMatch {
            vlan: VlanMatch::Tag(100),
            ..FlowMatch::default()
        };
        assert!(m.matches(PortNo(0), &tagged, None));
        assert!(!m.matches(PortNo(0), &f, None));
    }

    #[test]
    fn l4_ports_and_proto() {
        let f = frame();
        let m = FlowMatch {
            ip_proto: Some(IpProto::Udp),
            l4_dst: Some(2222),
            ..FlowMatch::default()
        };
        assert!(m.matches(PortNo(0), &f, None));
        let wrong = FlowMatch {
            l4_dst: Some(9999),
            ..FlowMatch::default()
        };
        assert!(!wrong.matches(PortNo(0), &f, None));
        let tcp_only = FlowMatch {
            ip_proto: Some(IpProto::Tcp),
            ..FlowMatch::default()
        };
        assert!(!tcp_only.matches(PortNo(0), &f, None));
    }

    #[test]
    fn ip_fields_never_match_non_ip() {
        let arp = Frame::arp(
            MacAddr::local(1),
            mts_net::ArpPacket::request(
                MacAddr::local(1),
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(10, 0, 0, 2),
            ),
        );
        let m = FlowMatch::to_ip(Ipv4Addr::new(10, 0, 0, 2));
        assert!(!m.matches(PortNo(0), &arp, None));
    }

    #[test]
    fn tunnel_metadata_matching() {
        let f = frame();
        let m = FlowMatch::any().and_tun(Vni::new(7));
        assert!(!m.matches(PortNo(0), &f, None));
        assert!(m.matches(PortNo(0), &f, Some(Vni::new(7))));
        assert!(!m.matches(PortNo(0), &f, Some(Vni::new(8))));
    }
}
