//! Flow actions applied by matching rules.

use crate::switch::PortNo;
use crate::table::TableId;
use mts_net::{MacAddr, Vni};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// One action in a rule's action list, executed in order.
///
/// The action set covers what the MTS controller needs (paper Fig. 3 and
/// Sec. 3.2): rewriting destination MACs so the NIC switch delivers frames
/// to the right VF, VLAN push/pop, VXLAN encapsulation for overlay
/// networks, the learning-switch `NORMAL` behaviour, and plain forwarding.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Action {
    /// Emit the frame on a port.
    Output(PortNo),
    /// Emit the frame on every port except the ingress port.
    Flood,
    /// Behave as a learning L2 switch (learn source, forward or flood).
    Normal,
    /// Rewrite the destination MAC (e.g. to a tenant VF's address).
    SetEthDst(MacAddr),
    /// Rewrite the source MAC (e.g. to the gateway's address).
    SetEthSrc(MacAddr),
    /// Push an 802.1Q tag.
    PushVlan(u16),
    /// Pop the 802.1Q tag (no-op if untagged).
    PopVlan,
    /// Decrement the IPv4 TTL; the frame is dropped when it reaches zero.
    DecTtl,
    /// Encapsulate the frame in a VXLAN tunnel to a remote VTEP.
    VxlanEncap {
        /// Tunnel id.
        vni: Vni,
        /// Outer source IPv4 (this VTEP).
        src_ip: Ipv4Addr,
        /// Outer destination IPv4 (remote VTEP).
        dst_ip: Ipv4Addr,
        /// Outer source MAC.
        src_mac: MacAddr,
        /// Outer destination MAC (underlay next hop).
        dst_mac: MacAddr,
    },
    /// Decapsulate a VXLAN frame, exposing the inner frame and recording
    /// the VNI in pipeline metadata for later `tun_id` matches.
    VxlanDecap,
    /// Continue matching in another table.
    GotoTable(TableId),
    /// Drop the frame (explicit; absence of output also drops).
    Drop,
}

impl Action {
    /// Returns whether this action terminates pipeline traversal.
    pub fn is_terminal(&self) -> bool {
        matches!(self, Action::Drop)
    }

    /// Returns whether this action can emit frames.
    pub fn emits(&self) -> bool {
        matches!(self, Action::Output(_) | Action::Flood | Action::Normal)
    }
}

/// Convenience constructor for the common "rewrite dmac, output" pair used
/// by the MTS ingress chain (step 3 of Fig. 3a).
pub fn rewrite_and_output(dmac: MacAddr, port: PortNo) -> Vec<Action> {
    vec![Action::SetEthDst(dmac), Action::Output(port)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(Action::Drop.is_terminal());
        assert!(!Action::Normal.is_terminal());
        assert!(Action::Output(PortNo(1)).emits());
        assert!(Action::Flood.emits());
        assert!(Action::Normal.emits());
        assert!(!Action::SetEthDst(MacAddr::local(1)).emits());
        assert!(!Action::GotoTable(TableId(1)).emits());
    }

    #[test]
    fn rewrite_and_output_shape() {
        let acts = rewrite_and_output(MacAddr::local(5), PortNo(2));
        assert_eq!(
            acts,
            vec![
                Action::SetEthDst(MacAddr::local(5)),
                Action::Output(PortNo(2))
            ]
        );
    }
}
