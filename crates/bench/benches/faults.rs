//! Fault-path benchmarks: what recovery costs.
//!
//! Times the machinery the blast-radius experiments exercise — one full
//! crash-detect-restart-reconcile cell per security level, and the
//! reconciliation primitive alone (no-op vs full rebuild) — so a
//! regression in the recovery path shows up as a number, not a feeling.

use criterion::{criterion_group, criterion_main, Criterion};
use mts_core::controller::Controller;
use mts_core::reconcile;
use mts_core::runtime::{RuntimeCfg, World};
use mts_core::spec::{DeploymentSpec, Scenario, SecurityLevel};
use mts_faults::{run_cell, FaultCase, FaultOpts};
use mts_host::ResourceMode;
use mts_sim::{Dur, Time};
use mts_vswitch::DatapathKind;

fn bench_opts() -> FaultOpts {
    FaultOpts {
        rate_pps: 50_000.0,
        run_for: Dur::millis(12),
        fault_at: Time::from_nanos(4_000_000),
        drain: Dur::millis(10),
        ..FaultOpts::default()
    }
}

/// One full blast-radius cell (clean run + faulty run + recovery +
/// isocheck) per configuration.
fn crash_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_cell_crash");
    group.sample_size(10);
    let specs = [
        (
            "baseline",
            DeploymentSpec::baseline(
                DatapathKind::Kernel,
                ResourceMode::Isolated,
                2,
                Scenario::P2v,
            ),
        ),
        (
            "level2x2",
            DeploymentSpec::mts(
                SecurityLevel::Level2 { compartments: 2 },
                DatapathKind::Kernel,
                ResourceMode::Isolated,
                Scenario::P2v,
            ),
        ),
    ];
    for (name, spec) in specs {
        group.bench_function(name, |b| {
            b.iter(|| run_cell(spec, FaultCase::Crash, bench_opts()).expect("cell runs"))
        });
    }
    group.finish();
}

/// The reconciliation primitive: a no-op pass over a correct world vs a
/// full rebuild after a flow-table wipe.
fn reconcile_primitive(c: &mut Criterion) {
    let mut group = c.benchmark_group("reconcile");
    let spec = DeploymentSpec::mts(
        SecurityLevel::Level2 { compartments: 2 },
        DatapathKind::Kernel,
        ResourceMode::Isolated,
        Scenario::P2v,
    );
    let make_world = || {
        let d = Controller::deploy(spec).expect("deployable");
        World::new(d, RuntimeCfg::for_spec(&spec), 1)
    };
    group.bench_function("noop", |b| {
        let mut w = make_world();
        b.iter(|| reconcile::reconcile(&mut w).churn())
    });
    group.bench_function("rebuild_after_wipe", |b| {
        let mut w = make_world();
        b.iter(|| {
            w.vswitches[0].inst.sw.clear();
            w.vswitches[0].rules_dirty = true;
            reconcile::reconcile(&mut w).churn()
        })
    });
    group.finish();
}

criterion_group!(benches, crash_cell, reconcile_primitive);
criterion_main!(benches);
