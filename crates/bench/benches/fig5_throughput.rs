//! Fig. 5(a,d,g) — aggregate forwarding throughput.
//!
//! One Criterion group per resource-mode row; each benchmark runs the full
//! measurement pipeline for one configuration at a reduced window, so
//! `cargo bench` both regenerates the figure rows (printed once per
//! benchmark) and tracks the simulator's own performance.

use criterion::{criterion_group, criterion_main, Criterion};
use mts_core::spec::Scenario;
use mts_core::testbed::{fig5_matrix, RunOpts, Testbed};
use mts_host::ResourceMode;
use mts_vswitch::DatapathKind;

fn bench_row(c: &mut Criterion, name: &str, mode: ResourceMode, dp: DatapathKind) {
    let mut group = c.benchmark_group(name);
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    for scenario in Scenario::ALL {
        for spec in fig5_matrix(mode, dp, scenario) {
            let tb = Testbed::new(spec);
            // Reduced offered rate + window: `cargo bench` tracks simulator
            // performance; the `repro` binary regenerates full-fidelity rows.
            let opts = RunOpts {
                rate_pps: 2_000_000.0,
                wire_len: 64,
                warmup: mts_sim::Dur::millis(6),
                measure: mts_sim::Dur::millis(2),
                seed: 1,
            };
            let m = tb.run(opts).expect("runs");
            println!(
                "[{name}] {:<26} {:>4}  {:>8.3} Mpps",
                m.config,
                m.scenario,
                m.mpps()
            );
            group.bench_function(format!("{} {}", spec.label(), scenario.label()), |b| {
                b.iter(|| tb.run(opts).expect("runs").received)
            });
        }
    }
    group.finish();
}

fn fig5a_shared(c: &mut Criterion) {
    bench_row(
        c,
        "fig5a_shared",
        ResourceMode::Shared,
        DatapathKind::Kernel,
    );
}

fn fig5d_isolated(c: &mut Criterion) {
    bench_row(
        c,
        "fig5d_isolated",
        ResourceMode::Isolated,
        DatapathKind::Kernel,
    );
}

fn fig5g_dpdk(c: &mut Criterion) {
    bench_row(c, "fig5g_dpdk", ResourceMode::Isolated, DatapathKind::Dpdk);
}

criterion_group!(fig5, fig5a_shared, fig5d_isolated, fig5g_dpdk);
criterion_main!(fig5);
