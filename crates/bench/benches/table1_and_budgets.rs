//! Table 1 (the vswitch survey), the Sec. 3.2 VF budget arithmetic and the
//! isolation matrix (the qualitative security evaluation).

use criterion::{criterion_group, criterion_main, Criterion};
use mts_core::spec::{DeploymentSpec, Scenario, SecurityLevel};
use mts_core::vfplan::{AddressPlan, VfBudget};
use mts_core::{attacks, survey};
use mts_host::ResourceMode;
use mts_vswitch::DatapathKind;

fn table1(c: &mut Criterion) {
    println!("{}", survey::render_table());
    println!(
        "monolithic {:.0}%, co-located {:.0}%, split processing {:.0}%",
        survey::monolithic_fraction() * 100.0,
        survey::colocated_fraction() * 100.0,
        survey::split_processing_fraction() * 100.0
    );
    c.bench_function("table1_render", |b| b.iter(survey::render_table));
}

fn vf_budget(c: &mut Criterion) {
    for (level, tenants, expect) in [
        (SecurityLevel::Level1, 1u32, 3u32),
        (SecurityLevel::Level1, 4, 9),
        (SecurityLevel::Level2 { compartments: 2 }, 2, 6),
        (SecurityLevel::Level2 { compartments: 4 }, 4, 12),
    ] {
        let total = VfBudget::for_level(level, tenants, 1).total();
        println!(
            "[vfcount] {} x{tenants} tenants -> {total} VFs",
            level.label()
        );
        assert_eq!(total, expect, "paper Sec. 3.2 numbers");
    }
    let spec = DeploymentSpec::mts(
        SecurityLevel::Level2 { compartments: 4 },
        DatapathKind::Kernel,
        ResourceMode::Shared,
        Scenario::P2v,
    );
    c.bench_function("address_plan_build", |b| {
        b.iter(|| AddressPlan::build(&spec, 2).total_vfs())
    });
}

fn isolation(c: &mut Criterion) {
    for r in attacks::evaluate_ladder().expect("ladder evaluates") {
        println!("{r}");
    }
    let spec = DeploymentSpec::mts(
        SecurityLevel::Level2 { compartments: 4 },
        DatapathKind::Kernel,
        ResourceMode::Shared,
        Scenario::P2v,
    );
    let mut group = c.benchmark_group("isolation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    group.bench_function("attack_suite_l2_4", |b| {
        b.iter(|| attacks::evaluate(spec).expect("evaluates").blocked_count())
    });
    group.finish();
}

criterion_group!(table1_and_budgets, table1, vf_budget, isolation);
criterion_main!(table1_and_budgets);
