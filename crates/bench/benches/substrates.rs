//! Substrate microbenchmarks and ablations.
//!
//! These quantify the design choices DESIGN.md calls out: the megaflow
//! cache (fast vs slow path), the NIC VEB forwarding decision, the
//! discrete-event engine, the wire codec and the TCP engine.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mts_core::controller::Controller;
use mts_core::runtime::{start_udp_generator, RuntimeCfg, Sim, World};
use mts_core::spec::{DeploymentSpec, Scenario, SecurityLevel};
use mts_host::ResourceMode;
use mts_net::{parse, serialize, Frame, MacAddr};
use mts_nic::{NicModel, NicPort, PfId, SriovNic, VfConfig, VfId};
use mts_sim::{Dur, Engine, Time};
use mts_tcp::{Connection, TcpConfig};
use mts_telemetry::Telemetry;
use mts_vswitch::{Action, DatapathKind, FlowMatch, FlowRule, PortKind, VirtualSwitch};
use std::net::Ipv4Addr;

fn probe(dport: u16) -> Frame {
    Frame::udp_probe(
        MacAddr::local(1),
        MacAddr::local(2),
        Ipv4Addr::new(10, 0, 0, 1),
        Ipv4Addr::new(10, 0, 1, 1),
        dport,
        0,
        64,
    )
}

/// Ablation: exact-match cache hit vs full pipeline traversal.
fn vswitch_fast_vs_slow(c: &mut Criterion) {
    let mut group = c.benchmark_group("vswitch_lookup");
    // A switch with a realistic rule population (100 per-tenant rules).
    let mut sw = VirtualSwitch::new("bench");
    let p_in = sw.add_port("in", PortKind::Physical);
    let p_out = sw.add_port("out", PortKind::Physical);
    for t in 0..100u8 {
        sw.install(
            0,
            FlowRule::new(
                20,
                FlowMatch::to_ip(Ipv4Addr::new(10, 0, t, 1)).and_port(p_in),
                vec![Action::Output(p_out)],
            ),
        )
        .expect("table exists");
    }
    sw.install(0, FlowRule::new(1, FlowMatch::any(), vec![Action::Drop]))
        .expect("table exists");

    // Warm the cache for one flow.
    let hot = probe(7);
    let _ = sw.process(p_in, hot.clone());
    group.bench_function("cache_hit", |b| {
        b.iter(|| sw.process(p_in, hot.clone()).len())
    });

    let mut port_cycle = 0u16;
    group.bench_function("slow_path_miss", |b| {
        b.iter_batched(
            || {
                port_cycle = port_cycle.wrapping_add(1);
                probe(port_cycle) // new flow every iteration
            },
            |f| sw.process(p_in, f).len(),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// The NIC's embedded switch forwarding decision.
fn nic_veb(c: &mut Criterion) {
    let mut nic = SriovNic::new(1, NicModel::default());
    let mac = MacAddr::local(0x42);
    nic.create_vf(PfId(0), VfId(0), VfConfig::infrastructure(mac))
        .expect("vf created");
    let frame = Frame::udp_data(
        MacAddr::local(9),
        mac,
        Ipv4Addr::new(10, 0, 0, 1),
        Ipv4Addr::new(10, 0, 0, 2),
        1,
        2,
        50,
    );
    c.bench_function("nic_veb_forward", |b| {
        b.iter(|| {
            nic.ingress(PfId(0), NicPort::Wire, frame.clone())
                .expect("switches")
                .len()
        })
    });
}

/// Raw event-engine throughput.
fn des_engine(c: &mut Criterion) {
    c.bench_function("engine_100k_events", |b| {
        b.iter(|| {
            let mut e: Engine<u64> = Engine::new();
            let mut w = 0u64;
            for i in 0..100_000u64 {
                e.schedule_at(Time::from_nanos(i), |w: &mut u64, _| *w += 1);
            }
            e.run(&mut w);
            w
        })
    });
}

/// Wire codec round trip.
fn wire_codec(c: &mut Criterion) {
    let f = probe(80);
    c.bench_function("wire_serialize_parse", |b| {
        b.iter(|| parse(&serialize(&f)).expect("round trips").wire_len())
    });
}

/// TCP engine: a 1 MB in-memory transfer between two stacks.
fn tcp_transfer(c: &mut Criterion) {
    c.bench_function("tcp_1mb_transfer", |b| {
        b.iter(|| {
            let cfg = TcpConfig::default();
            let now = Time::ZERO;
            let (mut cl, out) = Connection::client(cfg, 40000, 80, 7, now);
            let (mut sv, sout) =
                Connection::server_from_syn(cfg, &out.segments[0], 99, now).expect("syn");
            let ack = cl.on_segment(&sout.segments[0], now);
            let _ = sv.on_segment(&ack.segments[0], now);
            let mut inflight = cl.send(1_000_000, now).segments;
            let mut delivered = 0u64;
            let mut t = now;
            while !inflight.is_empty() {
                t += Dur::micros(50);
                let mut back = Vec::new();
                for s in inflight.drain(..) {
                    let o = sv.on_segment(&s, t);
                    delivered += o.delivered;
                    back.extend(o.segments);
                }
                let mut next = Vec::new();
                for s in back {
                    next.extend(cl.on_segment(&s, t).segments);
                }
                if next.is_empty() {
                    if let Some(d) = sv.next_timer() {
                        next.extend(sv.on_timer(d).segments);
                        let _ = d;
                    }
                }
                inflight = next;
            }
            delivered
        })
    });
}

/// A/B ablation for the telemetry layer: the same Level-2 v2v pipeline run
/// with telemetry disabled (the default — one `Option` check per hook site)
/// and enabled (full journey/trace/metrics recording). The `off` arm is the
/// regression guard: it must match the pre-telemetry pipeline cost.
fn telemetry_ab(c: &mut Criterion) {
    fn run(enabled: bool) -> u64 {
        let spec = DeploymentSpec::mts(
            SecurityLevel::Level2 { compartments: 2 },
            DatapathKind::Kernel,
            ResourceMode::Isolated,
            Scenario::V2v,
        );
        let d = Controller::deploy(spec).expect("deployable");
        let mut w = World::new(d, RuntimeCfg::for_spec(&spec), 1);
        w.sink.window = (Time::ZERO, Time::MAX);
        if enabled {
            w.telemetry = Telemetry::enabled();
        }
        let mut e = Sim::new();
        let flows: Vec<(MacAddr, Ipv4Addr)> = w
            .plan
            .tenants
            .iter()
            .map(|t| {
                let c = w.spec.compartment_of_tenant(t.index) as usize;
                (w.plan.compartments[c].in_out[0].1, t.ip)
            })
            .collect();
        start_udp_generator(&mut e, flows, 100_000.0, 64, Time::from_nanos(1_000_000));
        e.run_until(&mut w, Time::from_nanos(3_000_000));
        w.sink.received
    }

    let mut group = c.benchmark_group("telemetry_pipeline");
    group.sample_size(20);
    group.bench_function("off", |b| b.iter(|| run(false)));
    group.bench_function("on", |b| b.iter(|| run(true)));
    group.finish();
}

criterion_group!(
    substrates,
    vswitch_fast_vs_slow,
    nic_veb,
    des_engine,
    wire_codec,
    tcp_transfer,
    telemetry_ab
);
criterion_main!(substrates);
