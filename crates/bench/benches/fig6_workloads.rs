//! Fig. 6 — the TCP workload evaluation (iperf, Apache, Memcached).
//!
//! One benchmark per `(workload, representative configuration)` pair at
//! reduced windows; the figure row values print once per benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use mts_core::spec::{DeploymentSpec, Scenario, SecurityLevel};
use mts_core::workloads::{run_workload, Workload, WorkloadOpts};
use mts_host::ResourceMode;
use mts_sim::Dur;
use mts_vswitch::DatapathKind;

fn quick_opts() -> WorkloadOpts {
    WorkloadOpts {
        duration: Dur::millis(150),
        warmup: Dur::millis(150),
        ab_concurrency: 50,
        memslap_connections: 16,
        seed: 1,
    }
}

fn matrix() -> Vec<(&'static str, DeploymentSpec)> {
    vec![
        (
            "baseline shared",
            DeploymentSpec::baseline(DatapathKind::Kernel, ResourceMode::Shared, 1, Scenario::P2v),
        ),
        (
            "L1 shared",
            DeploymentSpec::mts(
                SecurityLevel::Level1,
                DatapathKind::Kernel,
                ResourceMode::Shared,
                Scenario::P2v,
            ),
        ),
        (
            "L2-4 isolated",
            DeploymentSpec::mts(
                SecurityLevel::Level2 { compartments: 4 },
                DatapathKind::Kernel,
                ResourceMode::Isolated,
                Scenario::P2v,
            ),
        ),
        (
            "L2-4 dpdk",
            DeploymentSpec::mts(
                SecurityLevel::Level2 { compartments: 4 },
                DatapathKind::Dpdk,
                ResourceMode::Isolated,
                Scenario::P2v,
            ),
        ),
    ]
}

fn bench_workload(c: &mut Criterion, workload: Workload, panel: &str) {
    let mut group = c.benchmark_group(panel);
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    for (label, spec) in matrix() {
        let r = run_workload(spec, workload, quick_opts()).expect("runs");
        println!(
            "[{panel}] {:<16} {:>12.2} {} (mean resp {:.2} ms)",
            label,
            r.throughput,
            workload.unit(),
            r.latency.mean / 1e6
        );
        group.bench_function(label, |b| {
            b.iter(|| {
                run_workload(spec, workload, quick_opts())
                    .expect("runs")
                    .throughput
            })
        });
    }
    group.finish();
}

fn fig6_iperf(c: &mut Criterion) {
    bench_workload(c, Workload::Iperf, "fig6_iperf");
}

fn fig6_apache(c: &mut Criterion) {
    bench_workload(c, Workload::Apache, "fig6_apache");
}

fn fig6_memcached(c: &mut Criterion) {
    bench_workload(c, Workload::Memcached, "fig6_memcached");
}

criterion_group!(fig6, fig6_iperf, fig6_apache, fig6_memcached);
criterion_main!(fig6);
