//! Fig. 5(b,e,h) — one-way latency at 10 kpps, plus the Sec. 4.2
//! packet-size sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use mts_core::spec::{DeploymentSpec, Scenario, SecurityLevel};
use mts_core::testbed::{fig5_matrix, RunOpts, Testbed};
use mts_host::ResourceMode;
use mts_sim::Dur;
use mts_vswitch::DatapathKind;

fn latency_opts() -> RunOpts {
    RunOpts {
        rate_pps: 10_000.0,
        wire_len: 64,
        warmup: Dur::millis(20),
        measure: Dur::millis(100),
        seed: 1,
    }
}

fn bench_row(c: &mut Criterion, name: &str, mode: ResourceMode, dp: DatapathKind) {
    let mut group = c.benchmark_group(name);
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    for scenario in Scenario::ALL {
        for spec in fig5_matrix(mode, dp, scenario) {
            let tb = Testbed::new(spec);
            let m = tb.run(latency_opts()).expect("runs");
            println!(
                "[{name}] {:<26} {:>4}  p50 {:>8.1}us p99 {:>8.1}us",
                m.config,
                m.scenario,
                m.latency.p50 as f64 / 1e3,
                m.latency.p99 as f64 / 1e3
            );
            group.bench_function(format!("{} {}", spec.label(), scenario.label()), |b| {
                b.iter(|| tb.run(latency_opts()).expect("runs").latency.p50)
            });
        }
    }
    group.finish();
}

fn fig5b_shared(c: &mut Criterion) {
    bench_row(
        c,
        "fig5b_shared",
        ResourceMode::Shared,
        DatapathKind::Kernel,
    );
}

fn fig5e_isolated(c: &mut Criterion) {
    bench_row(
        c,
        "fig5e_isolated",
        ResourceMode::Isolated,
        DatapathKind::Kernel,
    );
}

fn fig5h_dpdk(c: &mut Criterion) {
    bench_row(c, "fig5h_dpdk", ResourceMode::Isolated, DatapathKind::Dpdk);
}

/// The Sec. 4.2 packet-size sweep: 64/512/1500/2048 B probes.
fn pktsize(c: &mut Criterion) {
    let mut group = c.benchmark_group("sec42_pktsize");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    let spec = DeploymentSpec::mts(
        SecurityLevel::Level1,
        DatapathKind::Kernel,
        ResourceMode::Isolated,
        Scenario::P2v,
    );
    let tb = Testbed::new(spec);
    for wire in [64u32, 512, 1500, 2048] {
        let opts = latency_opts().with_wire_len(wire);
        let m = tb.run(opts).expect("runs");
        println!(
            "[pktsize] {}B p50 {:.1}us",
            wire,
            m.latency.p50 as f64 / 1e3
        );
        group.bench_function(format!("L1 p2v {}B", wire), |b| {
            b.iter(|| tb.run(opts).expect("runs").latency.p50)
        });
    }
    group.finish();
}

criterion_group!(fig5lat, fig5b_shared, fig5e_isolated, fig5h_dpdk, pktsize);
criterion_main!(fig5lat);
