//! Golden-replay determinism tests: re-running the quick SLO and faults
//! panels must reproduce the committed CSVs byte for byte.
//!
//! The panels are pure functions of (spec, seed): no wall clock, no host
//! state, no iteration-order dependence may leak into their output. These
//! tests pin that contract against files under `results/golden/`, so any
//! engine change that silently perturbs event ordering, RNG draws, or
//! float accumulation fails CI with a diff instead of shipping.
//!
//! To re-bless after an *intentional* output change:
//!
//! ```text
//! MTS_BLESS=1 cargo test -p mts-bench --test golden_replay
//! ```

use std::fs;
use std::path::PathBuf;

use mts_bench::slo;
use mts_faults::{blast_radius_panel, experiment, FaultOpts};
use mts_sim::{Dur, Time};

fn golden_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; the workspace root is two up.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .join("results/golden")
}

fn check_or_bless(name: &str, fresh: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("MTS_BLESS").is_some() {
        fs::create_dir_all(golden_dir()).expect("create results/golden");
        fs::write(&path, fresh).expect("write golden");
        return;
    }
    let committed = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}; run with MTS_BLESS=1", path.display()));
    assert!(
        committed == fresh,
        "{name}: replay diverged from committed golden ({} vs {} bytes).\n\
         If the output change is intentional, re-bless with\n\
         MTS_BLESS=1 cargo test -p mts-bench --test golden_replay",
        committed.len(),
        fresh.len()
    );
}

#[test]
fn slo_panel_replays_byte_identical() {
    let panel = slo::run_slo_panel(true).expect("quick slo panel");
    check_or_bless("slo_matrix.quick.csv", &slo::matrix_csv(&panel.cells));
    check_or_bless(
        "slo_billing_accuracy.quick.csv",
        &slo::accuracy_csv(&panel.accuracy),
    );
    check_or_bless(
        "slo_conservation.quick.csv",
        &slo::conservation_csv(&panel.conservation),
    );
}

#[test]
fn faults_panel_replays_byte_identical() {
    // Mirrors the repro binary's quick-mode options exactly.
    let opts = FaultOpts {
        rate_pps: 100_000.0,
        run_for: Dur::millis(15),
        fault_at: Time::from_nanos(5_000_000),
        drain: Dur::millis(12),
        ..FaultOpts::default()
    };
    let cells = blast_radius_panel(opts).expect("quick faults panel");
    check_or_bless("faults_blast_radius.quick.csv", &experiment::to_csv(&cells));
}
