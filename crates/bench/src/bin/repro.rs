//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! repro [--quick] [--out DIR] \
//!   [--trace-out FILE] [--metrics-out FILE] [--bench-out FILE] \
//!   [all|verify|fuzz|fig5|fig6|pktsize|table1|vfcount|isolation|noisy|overlay|billing|trace|faults|slo]
//! ```
//!
//! Prints aligned tables to stdout and writes CSV files under `--out`
//! (default `results/`). `--quick` scales measurement windows down ~8x for
//! a fast smoke pass.
//!
//! The `verify` target runs the static isolation/complete-mediation
//! verifier (`mts-isocheck`, see `VERIFICATION.md`) over every shipped
//! compartmentalized configuration, then seeds three canonical
//! misconfigurations and demands each is detected with a concrete
//! counterexample witness. It then exercises the *incremental* verifier:
//! crash-shaped configuration churn across the shipped matrix must stay
//! byte-identical to the from-scratch analysis after every delta, the
//! three misconfigurations re-seeded through the delta path must be
//! detected incrementally, and `diff_levels()` must show every hardened
//! configuration free of reachability regressions against its Baseline.
//! Exits nonzero on any failure. The same analysis also runs
//! automatically as a pre-flight check before every simulated scenario.
//!
//! The `fuzz` target runs the deterministic structured fuzzing campaign
//! (`mts-fuzz`, see `ROBUSTNESS.md`): fixed-seed generators and mutators
//! over the wire codec, the fault-plan grammar, hostile `ConfigDelta`
//! streams through the incremental verifier (full `verify()` as the
//! differential oracle), and reconciliation damage — plus the two live
//! modes (per-level NIC zero-leak injection and in-world byte injection
//! under traffic). It then replays the committed crasher corpus
//! (`tests/corpus/`) and exits nonzero on any invariant violation,
//! replay failure, or an empty corpus. `--quick` runs the 10k-case
//! budget; the default budget is ~5x larger.
//!
//! The `trace` target (implied when `--trace-out`/`--metrics-out` is given
//! without an explicit target) runs a Level-2 v2v scenario with telemetry
//! enabled, audits complete mediation over every frame journey, and writes
//! a Chrome trace-event file (open in <https://ui.perfetto.dev>), a JSONL
//! event log (`FILE.jsonl` sibling), and a Prometheus-style metrics
//! snapshot. See `OBSERVABILITY.md`.
//!
//! The `faults` target runs the blast-radius and recovery panel
//! (`mts-faults`, see `ROBUSTNESS.md`): every security level under every
//! fault scenario, with the supervisor recovering the deployment. It
//! self-checks the headline containment claims (Level-2 compartment kill
//! loses zero frames of other compartments; Baseline loses everyone's),
//! the `offered = delivered + Σ typed drops` accounting identity, and the
//! post-recovery isolation verification — exiting nonzero on any failure.
//! With `--trace-out`/`--metrics-out`, it additionally runs a traced
//! Level-2 crash-and-recover cell and exports its trace and metrics.
//!
//! The `slo` target runs the `mts-slo` panel (see `OBSERVABILITY.md`): the
//! noisy-neighbor SLO matrix (p50/p99/p999, loss, and meter-attributed
//! cycles per victim tenant, per security level), the billing-accuracy
//! experiment (billed vs ground-truth cycles), and the cycle-conservation
//! audit (`billed + unattributed == measured`, exact, at every level). It
//! self-checks every headline claim and exits nonzero on violation. It
//! also runs the simulator self-profiler plus the verification-throughput
//! workload (`verify-churn-l2-4`: fault-recovery delta streams replayed
//! through the incremental checker vs full re-verification per delta —
//! byte-identical, and non-quick runs fail below a 10x speedup), and
//! writes the perf-trajectory snapshot (`--bench-out`, default
//! `OUT/BENCH_MTS.json`; schema `mts-bench-v1`, validated by `cargo xtask
//! bench-check`). Wall-clock timing appears only in that snapshot — every
//! table and CSV is simulated-time-only and byte-deterministic for a
//! given seed.

use mts_bench::figures::{
    fig5_panel, fig6_panel, isolation_matrix, pktsize_sweep, render_fig6, vf_count_table,
    Fig5Panel, Fig6Panel, ReproOpts,
};
use mts_core::controller::Deployment;
use mts_core::delta::ConfigDelta;
use mts_core::perfiso::{self, NoisyOpts};
use mts_core::runtime::{start_udp_generator, RuntimeCfg, Sim, World};
use mts_core::spec::{DeploymentSpec, Scenario, SecurityLevel};
use mts_core::survey;
use mts_core::workloads::Workload;
use mts_core::{billing, overlay, Controller};
use mts_host::ResourceMode;
use mts_net::MacAddr;
use mts_nic::{FilterAction, FilterRule, NicPort, PfId, PortClass, VfConfig};
use mts_sim::Time;
use mts_telemetry::{MediationAuditor, Telemetry};
use mts_vswitch::DatapathKind;
use std::fs;
use std::path::{Path, PathBuf};

struct Args {
    quick: bool,
    out: PathBuf,
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    bench_out: Option<PathBuf>,
    what: Vec<String>,
}

fn parse_args() -> Args {
    let mut quick = false;
    let mut out = PathBuf::from("results");
    let mut trace_out = None;
    let mut metrics_out = None;
    let mut bench_out = None;
    let mut what = Vec::new();
    let mut args = std::env::args().skip(1);
    fn value(flag: &str, args: &mut impl Iterator<Item = String>) -> PathBuf {
        args.next().map(PathBuf::from).unwrap_or_else(|| {
            eprintln!("repro: {flag} requires a path argument");
            std::process::exit(2);
        })
    }
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = value("--out", &mut args),
            "--trace-out" => trace_out = Some(value("--trace-out", &mut args)),
            "--metrics-out" => metrics_out = Some(value("--metrics-out", &mut args)),
            "--bench-out" => bench_out = Some(value("--bench-out", &mut args)),
            other => what.push(other.to_string()),
        }
    }
    if what.is_empty() {
        // Exporter flags without an explicit target imply the run that
        // produces them.
        if bench_out.is_some() {
            what.push("slo".to_string());
        } else if trace_out.is_some() || metrics_out.is_some() {
            what.push("trace".to_string());
        } else {
            what.push("all".to_string());
        }
    }
    Args {
        quick,
        out,
        trace_out,
        metrics_out,
        bench_out,
        what,
    }
}

fn save(out_dir: &PathBuf, name: &str, content: &str) {
    if fs::create_dir_all(out_dir).is_ok() {
        let path = out_dir.join(name);
        if fs::write(&path, content).is_ok() {
            eprintln!("  wrote {}", path.display());
        }
    }
}

fn run_fig5(opts: ReproOpts, out: &PathBuf) {
    for panel in Fig5Panel::ALL {
        let (tput, lat, res) = fig5_panel(panel, opts);
        println!("{}", tput.render_throughput());
        println!("{}", lat.render_latency());
        println!("{}", res.render_resources());
        let tag = panel.label().split(' ').next().unwrap_or("row");
        save(out, &format!("fig5_{tag}_throughput.csv"), &tput.to_csv());
        save(out, &format!("fig5_{tag}_latency.csv"), &lat.to_csv());
    }
}

fn run_fig6(opts: ReproOpts, out: &PathBuf) {
    for row in Fig5Panel::ALL {
        for workload in Workload::ALL {
            let panel = Fig6Panel { row, workload };
            let rows = fig6_panel(panel, opts);
            println!("{}", render_fig6(panel.name(), workload, &rows));
            let mut csv =
                String::from("config,scenario,workload,throughput,ci95,resp_p50_ns,resp_p99_ns\n");
            for r in &rows {
                csv.push_str(&format!(
                    "{},{},{},{:.3},{:.3},{},{}\n",
                    r.config.replace(',', ";"),
                    r.scenario,
                    r.workload,
                    r.throughput,
                    r.ci95,
                    r.latency.p50,
                    r.latency.p99
                ));
            }
            let tag = format!(
                "fig6_{}_{}",
                row.label().split(' ').next().unwrap_or("row"),
                workload.label()
            );
            save(out, &format!("{tag}.csv"), &csv);
        }
    }
}

/// The observability showcase: a Level-2 v2v run with full telemetry,
/// mediation audit, and the trace/metrics exporters.
fn run_trace(quick: bool, trace_out: Option<&Path>, metrics_out: Option<&Path>) {
    let spec = DeploymentSpec::mts(
        SecurityLevel::Level2 { compartments: 2 },
        DatapathKind::Kernel,
        ResourceMode::Isolated,
        Scenario::V2v,
    );
    let d = Controller::deploy(spec).expect("deployable");
    let mut w = World::new(d, RuntimeCfg::for_spec(&spec), 1);
    w.sink.window = (Time::ZERO, Time::MAX);
    w.telemetry = Telemetry::enabled();
    let mut e = Sim::new();
    let flows: Vec<(MacAddr, std::net::Ipv4Addr)> = w
        .plan
        .tenants
        .iter()
        .map(|t| {
            let c = w.spec.compartment_of_tenant(t.index) as usize;
            (w.plan.compartments[c].in_out[0].1, t.ip)
        })
        .collect();
    let horizon = if quick { 2_000_000 } else { 10_000_000 };
    start_udp_generator(&mut e, flows, 50_000.0, 64, Time::from_nanos(horizon));
    e.run_until(&mut w, Time::from_nanos(horizon * 3));

    let rec = w.telemetry.recorder().expect("telemetry enabled");
    let report = MediationAuditor::sriov().audit(&rec.journeys);
    println!("== frame-journey trace (Level-2 v2v, kernel, isolated) ==");
    println!(
        "frames: sent {}  received {}  journeys {}  trace events {}",
        w.sink.sent,
        w.sink.received,
        rec.journeys.len(),
        rec.trace.len()
    );
    println!(
        "mediation audit: {} tenant segments checked, {} skipped, {} violations",
        report.checked,
        report.skipped,
        report.violations.len()
    );
    for v in report.violations.iter().take(5) {
        println!("  VIOLATION frame {}: {}", v.frame, v.reason);
    }
    if !report.ok() {
        eprintln!("repro: complete-mediation audit FAILED");
        std::process::exit(1);
    }
    fn write_or_die(p: &Path, content: String, note: &str) {
        if let Err(e) = fs::write(p, content) {
            eprintln!("repro: cannot write {}: {e}", p.display());
            std::process::exit(1);
        }
        eprintln!("  wrote {}{note}", p.display());
    }
    if let Some(p) = trace_out {
        write_or_die(p, rec.trace.to_chrome_trace(), " (open in ui.perfetto.dev)");
        write_or_die(&p.with_extension("jsonl"), rec.trace.to_jsonl(), "");
    }
    if let Some(p) = metrics_out {
        write_or_die(p, rec.metrics.render_prometheus(), "");
        write_or_die(&p.with_extension("jsonl"), rec.metrics.render_jsonl(), "");
    }
}

/// The blast-radius and recovery panel (`ROBUSTNESS.md`), with the
/// acceptance claims checked inline. With exporter flags, also runs a
/// traced Level-2 crash-and-recover cell and writes its trace/metrics.
fn run_faults(quick: bool, out: &PathBuf, trace_out: Option<&Path>, metrics_out: Option<&Path>) {
    use mts_faults::{blast_radius_panel, experiment, FaultOpts};
    use mts_sim::Dur;

    let opts = if quick {
        FaultOpts {
            rate_pps: 100_000.0,
            run_for: Dur::millis(15),
            fault_at: Time::from_nanos(5_000_000),
            drain: Dur::millis(12),
            ..FaultOpts::default()
        }
    } else {
        FaultOpts::default()
    };
    let cells = match blast_radius_panel(opts) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("repro: faults: {e}");
            std::process::exit(1);
        }
    };
    println!("{}", experiment::render(&cells));
    save(out, "faults_blast_radius.csv", &experiment::to_csv(&cells));

    // --- Self-checks: the PR's acceptance claims, on the real panel. ---
    let mut failed = false;
    let mut check = |ok: bool, what: &str| {
        if !ok {
            eprintln!("repro: faults: FAILED: {what}");
            failed = true;
        }
    };
    for c in &cells {
        check(
            c.drop_sum_ok,
            &format!("accounting identity broken: {} / {}", c.config, c.fault),
        );
        if let Some(v) = c.isocheck_violations {
            check(
                v == 0,
                &format!(
                    "post-recovery isocheck violations: {} / {}",
                    c.config, c.fault
                ),
            );
        }
    }
    let crash: Vec<_> = cells.iter().filter(|c| c.fault == "crash").collect();
    for c in &crash {
        if c.config.contains("L2") {
            check(
                c.affected == vec![0, 2],
                "L2 compartment kill must affect exactly compartment 0's tenants",
            );
            check(
                c.offered[1] == c.delivered[1] && c.offered[3] == c.delivered[3],
                "L2 compartment kill must lose zero frames of the other compartment",
            );
            check(c.recover.is_some(), "L2 crash must be recovered");
        } else {
            check(
                c.affected == vec![0, 1, 2, 3],
                &format!(
                    "{}: shared-vswitch crash must affect every tenant",
                    c.config
                ),
            );
        }
    }
    if failed {
        eprintln!("repro: fault panel FAILED");
        std::process::exit(1);
    }
    println!(
        "faults: {} cells clean; L2 compartment kill contained to one compartment, \
         accounting identity held everywhere",
        cells.len()
    );

    // Exporters: replay the Level-2 crash-and-recover cell with telemetry
    // enabled and write its trace and metrics (same flags as `trace`).
    if trace_out.is_some() || metrics_out.is_some() {
        let spec = DeploymentSpec::mts(
            SecurityLevel::Level2 { compartments: 2 },
            DatapathKind::Kernel,
            ResourceMode::Isolated,
            Scenario::P2v,
        );
        let w = match mts_faults::run_traced(spec, mts_faults::FaultCase::Crash, opts) {
            Ok(w) => w,
            Err(e) => {
                eprintln!("repro: faults: traced run: {e}");
                std::process::exit(1);
            }
        };
        let rec = w.telemetry.recorder().expect("telemetry enabled");
        fn write_or_die(p: &Path, content: String) {
            if let Err(e) = fs::write(p, content) {
                eprintln!("repro: cannot write {}: {e}", p.display());
                std::process::exit(1);
            }
            eprintln!("  wrote {}", p.display());
        }
        if let Some(p) = trace_out {
            write_or_die(p, rec.trace.to_chrome_trace());
            write_or_die(&p.with_extension("jsonl"), rec.trace.to_jsonl());
        }
        if let Some(p) = metrics_out {
            write_or_die(p, rec.metrics.render_prometheus());
            write_or_die(&p.with_extension("jsonl"), rec.metrics.render_jsonl());
        }
    }
}

/// The `mts-slo` panel plus the simulator self-profiler and the
/// perf-trajectory snapshot. Exits nonzero if any headline claim fails.
fn run_slo(quick: bool, out: &PathBuf, bench_out: Option<&Path>) {
    use mts_bench::slo;

    let panel = match slo::run_slo_panel(quick) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("repro: slo: {e}");
            std::process::exit(1);
        }
    };
    println!("{}", perfiso::render_matrix(&panel.cells));
    println!("{}", slo::render_accuracy(&panel.accuracy));
    println!("{}", slo::render_conservation(&panel.conservation));
    save(out, "slo_matrix.csv", &slo::matrix_csv(&panel.cells));
    save(
        out,
        "slo_billing_accuracy.csv",
        &slo::accuracy_csv(&panel.accuracy),
    );
    save(
        out,
        "slo_conservation.csv",
        &slo::conservation_csv(&panel.conservation),
    );
    let violations = panel.self_check();
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("repro: slo: FAILED: {v}");
        }
        eprintln!("repro: SLO panel FAILED");
        std::process::exit(1);
    }
    println!(
        "slo: {} matrix cells, {} configs; conservation exact everywhere, \
         all self-checks passed",
        panel.cells.len(),
        panel.conservation.len()
    );

    // Self-profiler: wall clock lives only here, in the binary; the
    // library reports simulated-side stats (see xtask lint).
    let mut workloads = Vec::new();
    for case in slo::ProfileCase::ALL {
        let t0 = std::time::Instant::now();
        let stats = match slo::run_profile_case(case, quick) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("repro: slo: profiler {}: {e}", case.name());
                std::process::exit(1);
            }
        };
        let wall = t0.elapsed().as_secs_f64();
        let w = slo::bench_workload(&stats, wall);
        println!(
            "profile {:<18} events {:>9}  frames {:>8}  {:>12.0} events/s  \
             {:>7.3} sim-Mpps/wall-s",
            w.name,
            w.events,
            w.frames,
            w.events_per_sec(),
            w.sim_mpps_per_wall_sec()
        );
        workloads.push(w);
    }
    match verify_churn_workload(quick) {
        Ok(w) => {
            println!(
                "profile {:<18} events {:>9}  frames {:>8}  {:>12.0} events/s  \
                 {:>6.1}x vs full re-verify",
                w.name,
                w.events,
                w.frames,
                w.events_per_sec(),
                w.speedup_vs_full.unwrap_or(0.0)
            );
            if !quick && w.speedup_vs_full.unwrap_or(0.0) < 10.0 {
                eprintln!(
                    "repro: slo: incremental verification speedup {:.1}x is below \
                     the 10x floor",
                    w.speedup_vs_full.unwrap_or(0.0)
                );
                std::process::exit(1);
            }
            workloads.push(w);
        }
        Err(e) => {
            eprintln!("repro: slo: verify-churn workload: {e}");
            std::process::exit(1);
        }
    }
    let json = slo::render_bench_json(&workloads);
    let default_path = out.join("BENCH_MTS.json");
    let path = bench_out.unwrap_or(&default_path);
    if let Some(dir) = path.parent() {
        let _ = fs::create_dir_all(dir);
    }
    if let Err(e) = fs::write(path, &json) {
        eprintln!("repro: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    eprintln!("  wrote {}", path.display());
}

/// The verification-throughput workload (`verify-churn-l2-4`): replays a
/// fault-driven configuration-delta stream both through the incremental
/// checker (cone recomputation per delta) and through per-delta full
/// re-verification, times both loops, and cross-checks that the two final
/// verdicts render byte-identically. The speedup is recorded in
/// `BENCH_MTS.json` and gated at 10x on full (non-`--quick`) runs.
fn verify_churn_workload(quick: bool) -> Result<mts_bench::slo::BenchWorkload, String> {
    use mts_bench::slo;
    let prep = slo::prepare_verify_churn(quick).map_err(|e| e.to_string())?;
    if prep.deltas.is_empty() {
        return Err("fault runs produced no configuration deltas".to_string());
    }
    let mut inc =
        mts_isocheck::IncrementalChecker::of_world(&prep.world).map_err(|e| e.to_string())?;
    let t0 = std::time::Instant::now();
    for d in &prep.deltas {
        inc.apply(d);
    }
    let inc_report = format!("{}", inc.report().map_err(|e| e.to_string())?);
    let inc_wall = t0.elapsed().as_secs_f64();

    let mut full =
        mts_isocheck::IncrementalChecker::of_world(&prep.world).map_err(|e| e.to_string())?;
    let t1 = std::time::Instant::now();
    for d in &prep.deltas {
        full.apply_full(d).map_err(|e| e.to_string())?;
    }
    let full_report = format!("{}", full.report().map_err(|e| e.to_string())?);
    let full_wall = t1.elapsed().as_secs_f64();
    if inc_report != full_report {
        return Err("incremental verdict diverged from per-delta full re-verification".to_string());
    }
    let stats = inc.stats();
    println!(
        "verify-churn: {} deltas; {} sources recomputed, {} skipped, {} atom \
         rebuilds; incremental {:.4}s vs full {:.4}s",
        stats.deltas_applied,
        stats.sources_recomputed,
        stats.sources_skipped,
        stats.full_rebuilds,
        inc_wall,
        full_wall
    );
    let n = prep.deltas.len() as u64;
    Ok(slo::BenchWorkload {
        name: "verify-churn-l2-4".to_string(),
        events: n,
        frames: 0,
        sim_seconds: prep.sim_seconds,
        wall_seconds: inc_wall,
        dispatch: vec![("delta.apply".to_string(), n)],
        speedup_vs_full: Some(if inc_wall > 0.0 {
            full_wall / inc_wall
        } else {
            0.0
        }),
    })
}

/// The static verification suite: every shipped compartmentalized
/// configuration must verify clean, and every seeded misconfiguration must
/// be detected with a counterexample witness.
fn run_verify() {
    println!("== static verification (mts-isocheck) ==");
    let reports = match mts_isocheck::verify_shipped() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("repro: verify: {e}");
            std::process::exit(1);
        }
    };
    let mut failed = false;
    for r in &reports {
        println!("{r}");
        if !r.informational && !r.is_clean() {
            failed = true;
        }
    }
    println!("== negative controls: seeded misconfigurations ==");
    let spec = DeploymentSpec::mts(
        SecurityLevel::Level1,
        DatapathKind::Kernel,
        ResourceMode::Shared,
        Scenario::P2v,
    );
    let mut detected = 0usize;
    for mc in mts_isocheck::Misconfig::ALL {
        let seeded = Controller::deploy(spec)
            .map_err(|e| e.to_string())
            .and_then(|mut d| {
                let what = mc.seed(&mut d).map_err(|e| e.to_string())?;
                let r = mts_isocheck::verify(&d).map_err(|e| e.to_string())?;
                Ok((what, r))
            });
        match seeded {
            Ok((what, r)) => {
                println!("-- seeded {}: {what}", mc.label());
                println!("{r}");
                if mc.detected_in(&r) {
                    detected += 1;
                } else {
                    eprintln!(
                        "repro: verify: seeded misconfiguration '{}' NOT detected",
                        mc.label()
                    );
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("repro: verify: cannot seed '{}': {e}", mc.label());
                failed = true;
            }
        }
    }
    println!("== delta equivalence: incremental vs from-scratch verifier ==");
    let mut churn_deltas = 0usize;
    for churn_spec in mts_isocheck::shipped_matrix() {
        match churn_one(churn_spec) {
            Ok(n) => {
                println!(
                    "  {}: {n} deltas, byte-identical throughout",
                    churn_spec.label()
                );
                churn_deltas += n;
            }
            Err(e) => {
                eprintln!(
                    "repro: verify: delta equivalence on {}: {e}",
                    churn_spec.label()
                );
                failed = true;
            }
        }
    }
    for mc in mts_isocheck::Misconfig::ALL {
        match misconfig_delta_control(mc, spec) {
            Ok(()) => println!(
                "  {} via delta: detected incrementally, byte-identical",
                mc.label()
            ),
            Err(e) => {
                eprintln!("repro: verify: delta control '{}': {e}", mc.label());
                failed = true;
            }
        }
    }
    println!("== cross-level differential reachability (Baseline vs hardened) ==");
    let diffed = match run_level_diffs() {
        Ok(n) => n,
        Err(e) => {
            eprintln!("repro: verify: level diff: {e}");
            failed = true;
            0
        }
    };
    if failed {
        eprintln!("repro: static verification FAILED");
        std::process::exit(1);
    }
    println!(
        "verify: {} shipped configurations clean; {detected}/{} seeded \
         misconfigurations detected with witnesses; {churn_deltas} churn \
         deltas byte-identical incrementally; {diffed} level diffs free of \
         regressions",
        reports.len(),
        mts_isocheck::Misconfig::ALL.len()
    );
}

/// The fuzzing gate: a fixed-seed deterministic campaign over the wire,
/// fault-plan, delta-stream, and reconciliation surfaces plus both live
/// injection modes, then a full replay of the committed crasher corpus.
/// Self-checking: exits non-zero on any invariant violation, corpus
/// replay failure, or an empty corpus.
fn run_fuzz(quick: bool, out: &PathBuf) {
    println!("== deterministic fuzz campaign (mts-fuzz) ==");
    let cfg = mts_fuzz::FuzzConfig {
        seed: 0xF022,
        budget: if quick {
            mts_fuzz::Budget::quick()
        } else {
            mts_fuzz::Budget::full()
        },
    };
    let report = mts_fuzz::run_campaign(&cfg);
    println!("{report}");
    save(out, "fuzz_campaign.csv", &report.to_csv());
    let mut failed = false;
    if !report.clean() {
        eprintln!("repro: fuzz: campaign found invariant violations");
        failed = true;
    }

    println!("== pinned crasher corpus replay ==");
    match mts_fuzz::corpus::load_all() {
        Ok(cases) if cases.is_empty() => {
            eprintln!("repro: fuzz: committed corpus is empty");
            failed = true;
        }
        Ok(cases) => {
            for case in &cases {
                match mts_fuzz::corpus::replay(case) {
                    Ok(()) => println!("  {case}: green"),
                    Err(e) => {
                        eprintln!("repro: fuzz: corpus replay: {e}");
                        failed = true;
                    }
                }
            }
            println!("fuzz: {} corpus cases replayed", cases.len());
        }
        Err(e) => {
            eprintln!("repro: fuzz: corpus load: {e}");
            failed = true;
        }
    }
    if failed {
        eprintln!("repro: fuzzing FAILED");
        std::process::exit(1);
    }
}

/// Byte-identity oracle: the incremental checker's rendered report must be
/// exactly what the from-scratch verifier produces on the deployment's
/// current state.
fn check_equiv(
    checker: &mut mts_isocheck::IncrementalChecker,
    d: &Deployment,
    what: &str,
) -> Result<(), String> {
    let full = mts_isocheck::verify(d).map_err(|e| e.to_string())?;
    let inc = checker.report().map_err(|e| e.to_string())?;
    if format!("{inc}") != format!("{full}") {
        return Err(format!("incremental verdict diverged after {what}"));
    }
    Ok(())
}

/// Applies one delta to the checker and demands byte-identity against the
/// already-mutated deployment.
fn apply_and_check(
    checker: &mut mts_isocheck::IncrementalChecker,
    d: &Deployment,
    delta: &ConfigDelta,
) -> Result<(), String> {
    checker.apply(delta);
    check_equiv(checker, d, &format!("{delta}"))
}

/// Drives a scripted configuration churn against one shipped deployment —
/// pipeline wipe, rule-by-rule reinstall, static-MAC removal and
/// reinstall, VEB flush, filter-list replacement, liveness flaps — applying
/// each mutation both to the live state and (as its [`ConfigDelta`]) to an
/// incremental checker, with a byte-identity check after every delta.
/// Returns the number of deltas applied.
fn churn_one(spec: DeploymentSpec) -> Result<usize, String> {
    let mut d = Controller::deploy(spec).map_err(|e| e.to_string())?;
    let mut checker =
        mts_isocheck::IncrementalChecker::of_deployment(&d).map_err(|e| e.to_string())?;
    check_equiv(&mut checker, &d, "construction")?;
    let mut applied = 0usize;

    // Crash-shaped churn: wipe vswitch 0's pipeline, then reinstall the
    // dumped rules one by one, as supervisor recovery + reconciliation do.
    let dump = d.vswitches[0].sw.dump_rules();
    d.vswitches[0].sw.clear();
    apply_and_check(&mut checker, &d, &ConfigDelta::RulesWiped { vswitch: 0 })?;
    applied += 1;
    for (table, rule) in dump {
        d.vswitches[0]
            .sw
            .install(table, rule.clone())
            .map_err(|e| format!("{e:?}"))?;
        apply_and_check(
            &mut checker,
            &d,
            &ConfigDelta::RuleInstalled {
                vswitch: 0,
                table,
                rule,
            },
        )?;
        applied += 1;
    }

    // Static-MAC churn on PF 0.
    let statics = d.nic.pf(PfId(0)).map_err(|e| e.to_string())?.static_macs();
    if let Some((vlan, mac, port)) = statics.first().cloned() {
        d.nic
            .pf_mut(PfId(0))
            .map_err(|e| e.to_string())?
            .remove_static_mac(vlan, mac);
        apply_and_check(
            &mut checker,
            &d,
            &ConfigDelta::StaticRemoved { pf: 0, vlan, mac },
        )?;
        applied += 1;
        d.nic
            .pf_mut(PfId(0))
            .map_err(|e| e.to_string())?
            .install_static_mac(vlan, mac, port);
        apply_and_check(
            &mut checker,
            &d,
            &ConfigDelta::StaticInstalled {
                pf: 0,
                vlan,
                mac,
                port,
            },
        )?;
        applied += 1;
    }

    // VEB flush: learned state dropped, statics rebuilt from VF configs.
    d.nic
        .pf_mut(PfId(0))
        .map_err(|e| e.to_string())?
        .flush_table();
    apply_and_check(&mut checker, &d, &ConfigDelta::VebFlushed { pf: 0 })?;
    applied += 1;

    // Filter-list replacement (same list — exercises the wholesale-set
    // path and the dead-filter warning bookkeeping).
    let filters = d
        .nic
        .pf(PfId(0))
        .map_err(|e| e.to_string())?
        .filters()
        .to_vec();
    d.nic
        .pf_mut(PfId(0))
        .map_err(|e| e.to_string())?
        .set_filters(filters.clone());
    apply_and_check(
        &mut checker,
        &d,
        &ConfigDelta::FiltersSet { pf: 0, filters },
    )?;
    applied += 1;

    // Liveness flaps carry no configuration and must not move the verdict.
    apply_and_check(&mut checker, &d, &ConfigDelta::VswitchDown { vswitch: 0 })?;
    apply_and_check(&mut checker, &d, &ConfigDelta::VswitchUp { vswitch: 0 })?;
    applied += 2;
    Ok(applied)
}

/// Seeds one canonical misconfiguration through the *delta* path: the same
/// NIC mutation [`mts_isocheck::Misconfig::seed`] performs is expressed as
/// the [`ConfigDelta`] it would emit, applied to an incremental checker,
/// and the incremental verdict must both match the full verifier
/// byte-for-byte and contain the misconfiguration's characteristic
/// detection.
fn misconfig_delta_control(
    mc: mts_isocheck::Misconfig,
    spec: DeploymentSpec,
) -> Result<(), String> {
    let mut d = Controller::deploy(spec).map_err(|e| e.to_string())?;
    let mut checker =
        mts_isocheck::IncrementalChecker::of_deployment(&d).map_err(|e| e.to_string())?;
    let vf_cfg = |d: &Deployment, r: mts_core::vfplan::VfRef| -> Result<VfConfig, String> {
        d.nic
            .pf(r.pf)
            .map_err(|e| e.to_string())?
            .vf(r.vf)
            .cloned()
            .ok_or_else(|| format!("no VF {}/{}", r.pf.0, r.vf.0))
    };
    let delta = match mc {
        mts_isocheck::Misconfig::VlanReuse => {
            let t0_vlan = d.plan.tenants[0].vlan;
            let r = d.plan.tenants[1].vf[0].0;
            let cfg = vf_cfg(&d, r)?;
            ConfigDelta::VfConfigured {
                pf: r.pf.0,
                vf: r.vf.0,
                cfg: VfConfig {
                    vlan: Some(t0_vlan),
                    ..cfg
                },
            }
        }
        mts_isocheck::Misconfig::SpoofCheckOff => {
            let r = d.plan.tenants[0].vf[0].0;
            let cfg = vf_cfg(&d, r)?;
            ConfigDelta::VfConfigured {
                pf: r.pf.0,
                vf: r.vf.0,
                cfg: VfConfig {
                    spoof_check: false,
                    ..cfg
                },
            }
        }
        mts_isocheck::Misconfig::BroadVebAllow => {
            let r = d.plan.tenants[0].vf[0].0;
            let mut filters = d
                .nic
                .pf(r.pf)
                .map_err(|e| e.to_string())?
                .filters()
                .to_vec();
            filters.push(FilterRule {
                priority: 60,
                from: PortClass::Vf(r.vf),
                src_mac: None,
                dst_mac: None,
                vlan: None,
                ethertype: None,
                action: FilterAction::Allow,
            });
            ConfigDelta::FiltersSet {
                pf: r.pf.0,
                filters,
            }
        }
        mts_isocheck::Misconfig::StaticHijack => {
            // Mirror the seed: the victim's gateway (vswitch in-out) MAC
            // entry on its VLAN is re-pointed at the attacker's VF.
            let victim = d.plan.tenants[0].vf[0].0;
            let vmac = d.plan.tenants[0].vf[0].1;
            let attacker = d.plan.tenants[1].vf[0].0;
            let pf = d.nic.pf(victim.pf).map_err(|e| e.to_string())?;
            let vlan = pf.vf(victim.vf).and_then(|c| c.vlan).unwrap_or(0);
            let gw = pf
                .static_macs()
                .into_iter()
                .find(|(v, m, p)| *v == vlan && *m != vmac && matches!(p, NicPort::Vf(_)))
                .map(|(_, m, _)| m)
                .ok_or("no gateway static entry on the victim VLAN")?;
            ConfigDelta::StaticInstalled {
                pf: victim.pf.0,
                vlan,
                mac: gw,
                port: NicPort::Vf(attacker.vf),
            }
        }
    };
    mc.seed(&mut d).map_err(|e| e.to_string())?;
    apply_and_check(&mut checker, &d, &delta)?;
    let inc_report = checker.report().map_err(|e| e.to_string())?;
    if !mc.detected_in(&inc_report) {
        return Err(format!(
            "incremental verdict missed seeded '{}'",
            mc.label()
        ));
    }
    Ok(())
}

/// Cross-level differential reachability: every shipped hardened
/// configuration against the Baseline of the same datapath, resource mode
/// and scenario. Hardening must only remove, mediate, or structurally
/// relocate paths — any `REGRESSION-LOST` / `REGRESSION-GAINED` verdict
/// fails the run. Returns the number of level pairs diffed.
fn run_level_diffs() -> Result<usize, String> {
    let mut pairs = 0usize;
    for spec in mts_isocheck::shipped_matrix() {
        let base_spec = DeploymentSpec::mts(
            SecurityLevel::Baseline,
            spec.datapath,
            spec.resource_mode,
            spec.scenario,
        );
        let base = Controller::deploy(base_spec).map_err(|e| e.to_string())?;
        let hard = Controller::deploy(spec).map_err(|e| e.to_string())?;
        let diff = mts_isocheck::diff_levels(&base, &hard).map_err(|e| e.to_string())?;
        println!("{diff}");
        if !diff.is_clean() {
            return Err(format!(
                "regression diffing {} against {}",
                base_spec.label(),
                spec.label()
            ));
        }
        pairs += 1;
    }
    Ok(pairs)
}

fn main() {
    let args = parse_args();
    let opts = if args.quick {
        ReproOpts::quick()
    } else {
        ReproOpts::default()
    };
    eprintln!(
        "repro: scale={} reps={} -> {}",
        opts.scale,
        opts.reps,
        args.out.display()
    );
    for what in &args.what {
        match what.as_str() {
            "verify" => run_verify(),
            "fuzz" => run_fuzz(args.quick, &args.out),
            "faults" => run_faults(
                args.quick,
                &args.out,
                args.trace_out.as_deref(),
                args.metrics_out.as_deref(),
            ),
            "slo" => run_slo(args.quick, &args.out, args.bench_out.as_deref()),
            "fig5" => run_fig5(opts, &args.out),
            "fig6" => run_fig6(opts, &args.out),
            "pktsize" => {
                let rep = pktsize_sweep(opts);
                println!("{}", rep.render_latency());
                save(&args.out, "pktsize_latency.csv", &rep.to_csv());
            }
            "table1" => {
                println!("== Table 1: design characteristics of virtual switches ==");
                println!("{}", survey::render_table());
                println!(
                    "monolithic: {:.0}%  co-located: {:.0}%  split kernel/user: {:.0}%\n",
                    survey::monolithic_fraction() * 100.0,
                    survey::colocated_fraction() * 100.0,
                    survey::split_processing_fraction() * 100.0
                );
            }
            "vfcount" => println!("{}", vf_count_table()),
            "noisy" => {
                let mut rows = Vec::new();
                for spec in [
                    DeploymentSpec::baseline(
                        DatapathKind::Kernel,
                        ResourceMode::Shared,
                        1,
                        Scenario::P2v,
                    ),
                    DeploymentSpec::mts(
                        SecurityLevel::Level1,
                        DatapathKind::Kernel,
                        ResourceMode::Shared,
                        Scenario::P2v,
                    ),
                    DeploymentSpec::mts(
                        SecurityLevel::Level2 { compartments: 2 },
                        DatapathKind::Kernel,
                        ResourceMode::Shared,
                        Scenario::P2v,
                    ),
                    DeploymentSpec::mts(
                        SecurityLevel::Level2 { compartments: 2 },
                        DatapathKind::Kernel,
                        ResourceMode::Isolated,
                        Scenario::P2v,
                    ),
                    DeploymentSpec::mts(
                        SecurityLevel::Level2 { compartments: 4 },
                        DatapathKind::Kernel,
                        ResourceMode::Isolated,
                        Scenario::P2v,
                    ),
                ] {
                    match perfiso::noisy_neighbor(spec, NoisyOpts::default()) {
                        Ok(r) => rows.push(r),
                        Err(e) => eprintln!("noisy: {e}"),
                    }
                }
                println!("{}", perfiso::render(&rows));
            }
            "isolation" => println!("{}", isolation_matrix()),
            "trace" => run_trace(
                args.quick,
                args.trace_out.as_deref(),
                args.metrics_out.as_deref(),
            ),
            "overlay" => {
                // VXLAN overlay round trip (Sec. 3.2) on Level-2.
                let spec = DeploymentSpec::mts(
                    SecurityLevel::Level2 { compartments: 2 },
                    DatapathKind::Kernel,
                    ResourceMode::Isolated,
                    Scenario::P2v,
                );
                let mut d = Controller::build(spec, 2).expect("deployable");
                let cfg = overlay::OverlayConfig::default();
                overlay::install_overlay_rules(&mut d, cfg).expect("overlay rules");
                let mut w = World::new(d, RuntimeCfg::for_spec(&spec), 1);
                w.sink.window = (Time::ZERO, Time::MAX);
                let mut e = Sim::new();
                let flows: Vec<_> = w
                    .plan
                    .tenants
                    .iter()
                    .map(|t| {
                        let c = w.spec.compartment_of_tenant(t.index) as usize;
                        (w.plan.compartments[c].in_out[0].1, t.ip, cfg.vni(t.index))
                    })
                    .collect();
                overlay::start_overlay_generator(
                    &mut e,
                    flows,
                    cfg,
                    100_000.0,
                    256,
                    Time::from_nanos(20_000_000),
                );
                e.run_until(&mut w, Time::from_nanos(60_000_000));
                println!("== VXLAN overlay (Sec 3.2) ==");
                println!(
                    "sent {}  received {}  p50 {:.1} us  per-tenant {:?}",
                    w.sink.sent,
                    w.sink.received,
                    w.sink.latency.percentile(50.0) as f64 / 1e3,
                    w.sink.per_flow
                );
            }
            "billing" => {
                // Per-tenant accounting (Sec. 6) from a standard p2v run.
                for spec in [
                    DeploymentSpec::baseline(
                        DatapathKind::Kernel,
                        ResourceMode::Shared,
                        1,
                        Scenario::P2v,
                    ),
                    DeploymentSpec::mts(
                        SecurityLevel::Level2 { compartments: 4 },
                        DatapathKind::Kernel,
                        ResourceMode::Isolated,
                        Scenario::P2v,
                    ),
                ] {
                    let d = Controller::deploy(spec).expect("deployable");
                    let mut w = World::new(d, RuntimeCfg::for_spec(&spec), 1);
                    w.sink.window = (Time::ZERO, Time::MAX);
                    let mut e = Sim::new();
                    let flows: Vec<(MacAddr, std::net::Ipv4Addr)> = w
                        .plan
                        .tenants
                        .iter()
                        .map(|t| {
                            let dmac = if spec.level.compartmentalized() {
                                let c = spec.compartment_of_tenant(t.index) as usize;
                                w.plan.compartments[c].in_out[0].1
                            } else {
                                Controller::baseline_router_mac(0)
                            };
                            (dmac, t.ip)
                        })
                        .collect();
                    start_udp_generator(&mut e, flows, 200_000.0, 64, Time::from_nanos(20_000_000));
                    e.run_until(&mut w, Time::from_nanos(60_000_000));
                    print!("{}", billing::bill(&w));
                }
            }
            "all" => {
                run_verify();
                run_fuzz(args.quick, &args.out);
                run_faults(args.quick, &args.out, None, None);
                run_slo(args.quick, &args.out, args.bench_out.as_deref());
                println!("== Table 1 ==\n{}", survey::render_table());
                println!("{}", vf_count_table());
                println!("{}", isolation_matrix());
                run_fig5(opts, &args.out);
                let rep = pktsize_sweep(opts);
                println!("{}", rep.render_latency());
                save(&args.out, "pktsize_latency.csv", &rep.to_csv());
                run_fig6(opts, &args.out);
                let mut rows = Vec::new();
                for spec in [
                    DeploymentSpec::baseline(
                        DatapathKind::Kernel,
                        ResourceMode::Shared,
                        1,
                        Scenario::P2v,
                    ),
                    DeploymentSpec::mts(
                        SecurityLevel::Level2 { compartments: 2 },
                        DatapathKind::Kernel,
                        ResourceMode::Isolated,
                        Scenario::P2v,
                    ),
                ] {
                    if let Ok(r) = perfiso::noisy_neighbor(spec, NoisyOpts::default()) {
                        rows.push(r);
                    }
                }
                println!("{}", perfiso::render(&rows));
            }
            other => eprintln!("unknown target: {other}"),
        }
    }
}
