//! The `repro slo` panel: per-tenant SLOs, billing accuracy and the
//! cycle-conservation identity, per security level — plus the simulator
//! self-profiler feeding the committed `BENCH_MTS.json` perf trajectory.
//!
//! Three sub-panels, all driven by the `mts-slo` cycle meters:
//!
//! 1. **Noisy-neighbor SLO matrix** — tenant 0 floods; every other
//!    tenant's p50/p99/p999 latency, loss, and meter-attributed vswitch
//!    cycles, per security level ([`mts_core::perfiso::noisy_matrix`]).
//! 2. **Billing accuracy** — what a biller can charge from observables
//!    vs. the simulator's omniscient ground truth: does Level-2 make
//!    bills more exact? ([`mts_core::billing::billing_accuracy`]).
//! 3. **Cycle conservation** — `billed + unattributed == measured` (core
//!    ledger), the meters' vswitch layer equals the same total, and the
//!    NIC VEB meter equals the NIC's own busy ledger — all exact, at
//!    every level.
//!
//! [`SloPanel::self_check`] re-verifies the headline claims and returns
//! the violations, so `repro slo` is self-checking. Everything here runs
//! on simulated time only; wall-clock timing (the perf-trajectory
//! `wall_seconds`) is measured by the `repro` binary and passed in, which
//! keeps this library deterministic and the `xtask lint` wall-clock ban
//! intact. The JSON snapshot follows the committed-perf-trajectory
//! methodology of Zhang et al., "How are performance issues introduced
//! and addressed?" (see `OBSERVABILITY.md` §perf-trajectory for the
//! schema).

use mts_core::billing::{bill, billing_accuracy, BillingAccuracy};
use mts_core::controller::{Controller, DeployError};
use mts_core::meters::Layer;
use mts_core::perfiso::{noisy_matrix, NoisyOpts, SloCell};
use mts_core::runtime::{start_udp_churn_generator, start_udp_generator, RuntimeCfg, Sim, World};
use mts_core::spec::{DeploymentSpec, Scenario, SecurityLevel};
use mts_host::ResourceMode;
use mts_net::MacAddr;
use mts_sim::{Dur, Time};
use mts_vswitch::DatapathKind;
use std::net::Ipv4Addr;

/// One deployment on the panel's configuration axis.
#[derive(Clone, Copy, Debug)]
pub struct PanelSpec {
    /// Stable panel name (includes the resource mode, which
    /// `DeploymentSpec::label` omits).
    pub name: &'static str,
    /// The deployment.
    pub spec: DeploymentSpec,
}

/// The panel's configuration axis: every security level, plus the
/// shared-vs-isolated Level-2 pair the paper's Fig. 5 contrasts.
pub fn panel_specs() -> [PanelSpec; 5] {
    [
        PanelSpec {
            name: "baseline-shared",
            spec: DeploymentSpec::baseline(
                DatapathKind::Kernel,
                ResourceMode::Shared,
                1,
                Scenario::P2v,
            ),
        },
        PanelSpec {
            name: "l1-isolated",
            spec: DeploymentSpec::mts(
                SecurityLevel::Level1,
                DatapathKind::Kernel,
                ResourceMode::Isolated,
                Scenario::P2v,
            ),
        },
        PanelSpec {
            name: "l2-2-shared",
            spec: DeploymentSpec::mts(
                SecurityLevel::Level2 { compartments: 2 },
                DatapathKind::Kernel,
                ResourceMode::Shared,
                Scenario::P2v,
            ),
        },
        PanelSpec {
            name: "l2-2-isolated",
            spec: DeploymentSpec::mts(
                SecurityLevel::Level2 { compartments: 2 },
                DatapathKind::Kernel,
                ResourceMode::Isolated,
                Scenario::P2v,
            ),
        },
        PanelSpec {
            name: "l2-4-isolated",
            spec: DeploymentSpec::mts(
                SecurityLevel::Level2 { compartments: 4 },
                DatapathKind::Kernel,
                ResourceMode::Isolated,
                Scenario::P2v,
            ),
        },
    ]
}

/// The noisy-neighbor options the panel uses.
pub fn panel_noisy_opts(quick: bool) -> NoisyOpts {
    if quick {
        NoisyOpts {
            victim_pps: 10_000.0,
            attacker_pps: 1_500_000.0,
            warmup: Dur::millis(6),
            measure: Dur::millis(4),
            seed: 7,
        }
    } else {
        NoisyOpts {
            victim_pps: 10_000.0,
            attacker_pps: 4_000_000.0,
            warmup: Dur::millis(12),
            measure: Dur::millis(10),
            seed: 7,
        }
    }
}

/// One configuration's cycle-conservation audit.
#[derive(Clone, Debug)]
pub struct ConservationRow {
    /// Panel configuration name.
    pub config: String,
    /// CPU the bill attributed to tenants.
    pub billed: Dur,
    /// CPU the bill could not attribute.
    pub unattributed: Dur,
    /// What the core ledger measured for all vswitch users.
    pub measured: Dur,
    /// The meters' vswitch-layer total (charged grant by grant).
    pub meters_vswitch: Dur,
    /// The meters' NIC-VEB-layer total.
    pub nic_meter: Dur,
    /// The NIC's own VEB busy ledger (accumulated independently).
    pub nic_ledger: Dur,
    /// `Σ truth + unresolved == total` inside the meters, every layer.
    pub internally_consistent: bool,
}

impl ConservationRow {
    /// Whether every conservation identity held exactly.
    pub fn holds(&self) -> bool {
        self.billed + self.unattributed == self.measured
            && self.meters_vswitch == self.measured
            && self.nic_meter == self.nic_ledger
            && self.internally_consistent
    }
}

/// The assembled `repro slo` panel.
#[derive(Clone, Debug, Default)]
pub struct SloPanel {
    /// SLO matrix rows (every config × every victim tenant).
    pub cells: Vec<SloCell>,
    /// Billing accuracy per config, in [`panel_specs`] order.
    pub accuracy: Vec<BillingAccuracy>,
    /// Conservation audit per config, in [`panel_specs`] order.
    pub conservation: Vec<ConservationRow>,
}

/// Runs a plain per-tenant UDP measurement (the billing workload) and
/// returns the settled world.
fn billing_run(spec: DeploymentSpec, quick: bool) -> Result<World, DeployError> {
    let d = Controller::deploy(spec)?;
    let cfg = RuntimeCfg::for_spec(&spec);
    let mut w = World::new(d, cfg, 9);
    let mut e = Sim::new();
    let flows: Vec<(MacAddr, Ipv4Addr)> = w
        .plan
        .tenants
        .iter()
        .map(|t| {
            let dmac = if spec.level.compartmentalized() {
                let c = spec.compartment_of_tenant(t.index) as usize;
                w.plan.compartments[c].in_out[0].1
            } else {
                Controller::baseline_router_mac(0)
            };
            (dmac, t.ip)
        })
        .collect();
    w.sink.window = (Time::ZERO, Time::MAX);
    let (gen_until, run_until) = if quick {
        (Time::from_nanos(2_000_000), Time::from_nanos(6_000_000))
    } else {
        (Time::from_nanos(4_000_000), Time::from_nanos(10_000_000))
    };
    start_udp_generator(&mut e, flows, 100_000.0, 64, gen_until);
    e.run_until(&mut w, run_until);
    Ok(w)
}

/// Audits the conservation identities on a settled world.
fn conservation_row(name: &str, w: &World) -> ConservationRow {
    let report = bill(w);
    ConservationRow {
        config: name.to_string(),
        billed: report.total_cpu(),
        unattributed: report.unattributed_cpu,
        measured: w.measured_vswitch_cpu(),
        meters_vswitch: w.meters.layer_total(Layer::Vswitch),
        nic_meter: w.meters.layer_total(Layer::NicVeb),
        nic_ledger: w.nic.veb_busy_total(),
        internally_consistent: w.meters.internally_consistent(),
    }
}

/// Runs the whole panel: matrix, accuracy, conservation, for every
/// configuration on the axis.
pub fn run_slo_panel(quick: bool) -> Result<SloPanel, DeployError> {
    let opts = panel_noisy_opts(quick);
    let mut panel = SloPanel::default();
    for ps in panel_specs() {
        let mut cells = noisy_matrix(ps.spec, opts)?;
        // The panel name distinguishes shared vs isolated; the spec label
        // alone does not.
        for c in &mut cells {
            c.config = ps.name.to_string();
        }
        panel.cells.extend(cells);

        let w = billing_run(ps.spec, quick)?;
        let mut acc = billing_accuracy(&w);
        acc.config = ps.name.to_string();
        panel.accuracy.push(acc);
        panel.conservation.push(conservation_row(ps.name, &w));
    }
    Ok(panel)
}

impl SloPanel {
    /// Re-verifies the panel's headline claims. Returns the violations;
    /// empty means the panel is clean.
    pub fn self_check(&self) -> Vec<String> {
        let mut bad = Vec::new();
        for row in &self.conservation {
            if !row.holds() {
                bad.push(format!(
                    "{}: conservation broken (billed {} + unattributed {} vs measured {}, \
                     meters {} / nic {} vs {})",
                    row.config,
                    row.billed,
                    row.unattributed,
                    row.measured,
                    row.meters_vswitch,
                    row.nic_meter,
                    row.nic_ledger
                ));
            }
        }
        for acc in &self.accuracy {
            let compartmentalized = !acc.config.starts_with("baseline");
            if compartmentalized {
                if (acc.attributed_fraction - 1.0).abs() > 1e-12 {
                    bad.push(format!(
                        "{}: compartmentalized level must attribute all cycles, got {}",
                        acc.config, acc.attributed_fraction
                    ));
                }
            } else if acc.attributed_fraction != 0.0 {
                bad.push(format!(
                    "{}: baseline must attribute nothing, got {}",
                    acc.config, acc.attributed_fraction
                ));
            }
            if acc.config == "l2-4-isolated" && !acc.tenants.iter().all(|t| t.exact) {
                bad.push("l2-4-isolated: singleton compartments must bill exactly".to_string());
            }
        }
        for c in &self.cells {
            if c.quiet.count == 0 {
                bad.push(format!(
                    "{} tenant {}: victim was never probed in the quiet phase",
                    c.config, c.tenant
                ));
            }
            // A Baseline victim may lose *every* probe under the flood —
            // that is the finding, not a broken panel — but the isolated
            // levels must keep delivering.
            if c.noisy.count == 0 && !c.config.starts_with("baseline") {
                bad.push(format!(
                    "{} tenant {}: no victim probe survived the flood",
                    c.config, c.tenant
                ));
            }
            if c.config == "l2-4-isolated" && c.attribution != "exact" {
                bad.push(format!(
                    "{} tenant {}: expected exact attribution, got {}",
                    c.config, c.tenant, c.attribution
                ));
            }
            if c.config.starts_with("baseline") && c.attribution != "unattributed" {
                bad.push(format!(
                    "{} tenant {}: baseline cycles must be unattributed, got {}",
                    c.config, c.tenant, c.attribution
                ));
            }
        }
        // The isolation claim itself: the isolated Level-2 victims keep
        // their loss low while the Baseline's victims bleed.
        let worst_iso = self
            .cells
            .iter()
            .filter(|c| c.config == "l2-4-isolated")
            .map(|c| c.loss)
            .fold(0.0, f64::max);
        let worst_base = self
            .cells
            .iter()
            .filter(|c| c.config.starts_with("baseline"))
            .map(|c| c.loss)
            .fold(0.0, f64::max);
        if worst_iso > 0.05 {
            bad.push(format!(
                "l2-4-isolated: victim loss should be negligible, worst {worst_iso:.4}"
            ));
        }
        if worst_base < 0.05 {
            bad.push(format!(
                "baseline: expected visible victim loss under flood, worst {worst_base:.4}"
            ));
        }
        bad
    }
}

/// The SLO matrix as CSV (byte-deterministic for a given panel).
pub fn matrix_csv(cells: &[SloCell]) -> String {
    let mut out = String::from(
        "config,tenant,quiet_p50_ns,quiet_p99_ns,quiet_p999_ns,noisy_p50_ns,noisy_p99_ns,\
         noisy_p999_ns,loss,amp_p50,amp_p99,amp_p999,attacker_pps,attributed_cycles_ns,\
         attribution\n",
    );
    for c in cells {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{:.6},{:.4},{:.4},{:.4},{:.1},{},{}\n",
            c.config,
            c.tenant,
            c.quiet.p50,
            c.quiet.p99,
            c.quiet.p999,
            c.noisy.p50,
            c.noisy.p99,
            c.noisy.p999,
            c.loss,
            c.amplification(),
            c.p99_amplification(),
            c.p999_amplification(),
            c.attacker_pps,
            c.attributed_cycles.as_nanos(),
            c.attribution
        ));
    }
    out
}

/// The billing-accuracy panel as CSV.
pub fn accuracy_csv(rows: &[BillingAccuracy]) -> String {
    let mut out = String::from(
        "config,tenant,billed_ns,truth_ns,abs_err_ns,rel_err,exact,attributed_fraction\n",
    );
    for acc in rows {
        for t in &acc.tenants {
            out.push_str(&format!(
                "{},{},{},{},{},{:.6},{},{:.6}\n",
                acc.config,
                t.tenant,
                t.billed.as_nanos(),
                t.truth.as_nanos(),
                t.abs_error().as_nanos(),
                t.rel_error(),
                t.exact,
                acc.attributed_fraction
            ));
        }
    }
    out
}

/// The conservation audit as CSV.
pub fn conservation_csv(rows: &[ConservationRow]) -> String {
    let mut out = String::from(
        "config,billed_ns,unattributed_ns,measured_ns,meters_vswitch_ns,nic_meter_ns,\
         nic_ledger_ns,internally_consistent,holds\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{}\n",
            r.config,
            r.billed.as_nanos(),
            r.unattributed.as_nanos(),
            r.measured.as_nanos(),
            r.meters_vswitch.as_nanos(),
            r.nic_meter.as_nanos(),
            r.nic_ledger.as_nanos(),
            r.internally_consistent,
            r.holds()
        ));
    }
    out
}

/// Renders the accuracy sub-panel as an aligned table.
pub fn render_accuracy(rows: &[BillingAccuracy]) -> String {
    let mut out = String::from("== billing accuracy: billed vs ground-truth cycles ==\n");
    out.push_str(&format!(
        "{:<16} {:>6} {:>14} {:>14} {:>10} {:>6} {:>10}\n",
        "config", "tenant", "billed", "truth", "rel err", "exact", "attr frac"
    ));
    for acc in rows {
        for t in &acc.tenants {
            out.push_str(&format!(
                "{:<16} {:>6} {:>14} {:>14} {:>10.4} {:>6} {:>10.3}\n",
                acc.config,
                t.tenant,
                format!("{}", t.billed),
                format!("{}", t.truth),
                t.rel_error(),
                if t.exact { "yes" } else { "no" },
                acc.attributed_fraction
            ));
        }
    }
    out
}

/// Renders the conservation sub-panel as an aligned table.
pub fn render_conservation(rows: &[ConservationRow]) -> String {
    let mut out =
        String::from("== cycle conservation: Σ attributed + unattributed == measured ==\n");
    out.push_str(&format!(
        "{:<16} {:>14} {:>14} {:>14} {:>14} {:>6}\n",
        "config", "billed", "unattributed", "measured", "nic veb", "holds"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<16} {:>14} {:>14} {:>14} {:>14} {:>6}\n",
            r.config,
            format!("{}", r.billed),
            format!("{}", r.unattributed),
            format!("{}", r.measured),
            format!("{}", r.nic_ledger),
            if r.holds() { "yes" } else { "NO" }
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Simulator self-profiler (the BENCH_MTS.json perf trajectory).
// ---------------------------------------------------------------------------

/// The profiled workload cases.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProfileCase {
    /// Per-tenant UDP at the Baseline: one shared datapath.
    UdpBaseline,
    /// Per-tenant UDP at Level-2 with four singleton compartments.
    UdpLevel2,
    /// The noisy-neighbor flood at Level-2 (attack-heavy event mix).
    NoisyLevel2,
    /// Destination-port churn at Level-2: every frame presents a fresh
    /// microflow key, so the flow cache lives in perpetual capacity
    /// flushes and the slow path dominates (megaflow-miss-heavy).
    MegaflowChurn,
    /// Sixteen tenants across eight compartments: stresses fan-out state
    /// (per-tenant VFs, gateways, flow programs) rather than per-flow rate.
    TenantFanout,
}

impl ProfileCase {
    /// Every case, in snapshot order.
    pub const ALL: [ProfileCase; 5] = [
        ProfileCase::UdpBaseline,
        ProfileCase::UdpLevel2,
        ProfileCase::NoisyLevel2,
        ProfileCase::MegaflowChurn,
        ProfileCase::TenantFanout,
    ];

    /// Stable workload name used in `BENCH_MTS.json`.
    pub fn name(self) -> &'static str {
        match self {
            ProfileCase::UdpBaseline => "udp-p2v-baseline",
            ProfileCase::UdpLevel2 => "udp-p2v-l2-4",
            ProfileCase::NoisyLevel2 => "noisy-flood-l2-2",
            ProfileCase::MegaflowChurn => "megaflow-churn-l2-2",
            ProfileCase::TenantFanout => "tenant-fanout-l2-8",
        }
    }
}

/// What one profiled run did, in simulated terms. Wall-clock time is the
/// caller's to measure (the `repro` binary wraps this call with a timer).
#[derive(Clone, Debug)]
pub struct ProfileStats {
    /// Workload name.
    pub name: &'static str,
    /// Events the engine dispatched.
    pub events: u64,
    /// Frames the load generator injected.
    pub frames: u64,
    /// Simulated horizon covered.
    pub sim_seconds: f64,
    /// Events dispatched per event-type tag, sorted by tag.
    pub dispatch: Vec<(&'static str, u64)>,
}

/// Runs one profiler case and returns its simulated-side stats.
pub fn run_profile_case(case: ProfileCase, quick: bool) -> Result<ProfileStats, DeployError> {
    let (spec, rate_pps, gen_ns, run_ns, dport_span) = match case {
        ProfileCase::UdpBaseline => (
            DeploymentSpec::baseline(DatapathKind::Kernel, ResourceMode::Shared, 1, Scenario::P2v),
            200_000.0,
            if quick { 2_000_000 } else { 10_000_000 },
            if quick { 6_000_000 } else { 20_000_000 },
            1,
        ),
        ProfileCase::UdpLevel2 => (
            DeploymentSpec::mts(
                SecurityLevel::Level2 { compartments: 4 },
                DatapathKind::Kernel,
                ResourceMode::Isolated,
                Scenario::P2v,
            ),
            200_000.0,
            if quick { 2_000_000 } else { 10_000_000 },
            if quick { 6_000_000 } else { 20_000_000 },
            1,
        ),
        ProfileCase::NoisyLevel2 => (
            DeploymentSpec::mts(
                SecurityLevel::Level2 { compartments: 2 },
                DatapathKind::Kernel,
                ResourceMode::Isolated,
                Scenario::P2v,
            ),
            if quick { 1_500_000.0 } else { 4_000_000.0 },
            if quick { 3_000_000 } else { 10_000_000 },
            if quick { 8_000_000 } else { 20_000_000 },
            1,
        ),
        // A span of 16384 distinct destination ports (2x the flow-cache
        // capacity) means the cache can never converge: every frame is a
        // slow-path miss and capacity flushes recur throughout the run.
        ProfileCase::MegaflowChurn => (
            DeploymentSpec::mts(
                SecurityLevel::Level2 { compartments: 2 },
                DatapathKind::Kernel,
                ResourceMode::Isolated,
                Scenario::P2v,
            ),
            if quick { 1_000_000.0 } else { 2_000_000.0 },
            if quick { 3_000_000 } else { 10_000_000 },
            if quick { 8_000_000 } else { 20_000_000 },
            16_384,
        ),
        ProfileCase::TenantFanout => {
            let mut spec = DeploymentSpec::mts(
                SecurityLevel::Level2 { compartments: 8 },
                DatapathKind::Kernel,
                ResourceMode::Isolated,
                Scenario::P2v,
            );
            spec.tenants = 16;
            (
                spec,
                if quick { 500_000.0 } else { 1_000_000.0 },
                if quick { 3_000_000 } else { 10_000_000 },
                if quick { 8_000_000 } else { 20_000_000 },
                1,
            )
        }
    };
    let d = Controller::deploy(spec)?;
    let mut cfg = RuntimeCfg::for_spec(&spec);
    cfg.offered_pps = rate_pps;
    let mut w = World::new(d, cfg, 11);
    let mut e = Sim::new();
    w.sink.window = (Time::ZERO, Time::MAX);
    let flows: Vec<(MacAddr, Ipv4Addr)> = w
        .plan
        .tenants
        .iter()
        .map(|t| {
            let dmac = if spec.level.compartmentalized() {
                let c = spec.compartment_of_tenant(t.index) as usize;
                w.plan.compartments[c].in_out[0].1
            } else {
                Controller::baseline_router_mac(0)
            };
            (dmac, t.ip)
        })
        .collect();
    start_udp_churn_generator(
        &mut e,
        flows,
        rate_pps,
        64,
        Time::from_nanos(gen_ns),
        dport_span,
    );
    e.run_until(&mut w, Time::from_nanos(run_ns));

    let dispatch: Vec<(&'static str, u64)> = e.dispatch_counts().collect();
    let events: u64 = dispatch.iter().map(|(_, n)| *n).sum();
    Ok(ProfileStats {
        name: case.name(),
        events,
        frames: w.sink.sent,
        sim_seconds: Time::from_nanos(run_ns).as_secs_f64(),
        dispatch,
    })
}

/// A prepared verification-throughput workload: the pristine pre-fault
/// world an incremental checker seeds from, plus a fault-driven
/// configuration-delta stream to replay against it. The `repro` binary
/// times the incremental and full re-verification loops around this data
/// (wall clock lives only in the binary; see the `xtask lint` ban).
pub struct VerifyChurnPrep {
    /// A world in the pristine pre-fault configuration (deployment,
    /// runtime config and seed identical to the runs that produced the
    /// stream — fault runs emit no deltas before the first event).
    pub world: World,
    /// The concatenated, sequence-ordered delta streams.
    pub deltas: Vec<mts_core::delta::ConfigDelta>,
    /// Total simulated horizon of the runs that generated the stream.
    pub sim_seconds: f64,
}

/// Builds the `verify-churn-l2-4` workload: a Level-2 (4 compartments)
/// p2v deployment run under a battery of fault scenarios — crash loop,
/// flow-table wipe, random rule loss, VEB flush — each with supervisor
/// recovery and periodic reconciliation, and every configuration mutation
/// recorded in the world's delta log. Each scenario ends fully recovered
/// (reconciliation restores the desired configuration), so the drained
/// streams concatenate into one long churn sequence over the same
/// deployment.
pub fn prepare_verify_churn(quick: bool) -> Result<VerifyChurnPrep, DeployError> {
    use mts_faults::{FaultCase, FaultOpts};
    let spec = DeploymentSpec::mts(
        SecurityLevel::Level2 { compartments: 4 },
        DatapathKind::Kernel,
        ResourceMode::Isolated,
        Scenario::P2v,
    );
    let opts = if quick {
        FaultOpts {
            rate_pps: 50_000.0,
            run_for: Dur::millis(15),
            fault_at: Time::from_nanos(5_000_000),
            drain: Dur::millis(12),
            ..FaultOpts::default()
        }
    } else {
        FaultOpts {
            rate_pps: 50_000.0,
            ..FaultOpts::default()
        }
    };
    let cases = [
        FaultCase::CrashLoop,
        FaultCase::WipeFlows,
        FaultCase::LoseRules,
        FaultCase::FlushVeb,
        FaultCase::Crash,
    ];
    let mut deltas = Vec::new();
    let mut sim_seconds = 0.0;
    for case in cases {
        let mut w = mts_faults::run_traced(spec, case, opts)?;
        deltas.extend(w.deltas.drain().into_iter().map(|(_, d)| d));
        sim_seconds += (opts.run_for + opts.drain).as_secs_f64();
    }
    let d = Controller::deploy(spec)?;
    let mut cfg = RuntimeCfg::for_spec(&spec);
    cfg.offered_pps = opts.rate_pps;
    let world = World::new(d, cfg, opts.seed);
    Ok(VerifyChurnPrep {
        world,
        deltas,
        sim_seconds,
    })
}

/// One workload's entry in the perf-trajectory snapshot: the simulated
/// stats plus the wall-clock seconds the caller measured around the run.
#[derive(Clone, Debug)]
pub struct BenchWorkload {
    /// Workload name.
    pub name: String,
    /// Events the engine dispatched.
    pub events: u64,
    /// Frames injected.
    pub frames: u64,
    /// Simulated horizon covered.
    pub sim_seconds: f64,
    /// Wall-clock seconds the run took (measured by the caller).
    pub wall_seconds: f64,
    /// Per-event-type dispatch counts.
    pub dispatch: Vec<(String, u64)>,
    /// For comparative workloads (the `verify-churn` family): how many
    /// times faster this run was than the non-incremental alternative
    /// over the same input. `None` for plain profiler workloads.
    pub speedup_vs_full: Option<f64>,
}

impl BenchWorkload {
    /// Engine throughput: events dispatched per wall-second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.events as f64 / self.wall_seconds
        }
    }

    /// Simulation rate: simulated megapackets per wall-second.
    pub fn sim_mpps_per_wall_sec(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.frames as f64 / 1e6 / self.wall_seconds
        }
    }
}

/// Combines profiled stats with a measured wall time.
pub fn bench_workload(stats: &ProfileStats, wall_seconds: f64) -> BenchWorkload {
    BenchWorkload {
        name: stats.name.to_string(),
        events: stats.events,
        frames: stats.frames,
        sim_seconds: stats.sim_seconds,
        wall_seconds,
        dispatch: stats
            .dispatch
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect(),
        speedup_vs_full: None,
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "0.000000".to_string()
    }
}

/// Renders the `BENCH_MTS.json` perf-trajectory snapshot (schema
/// `mts-bench-v1`; validated by `cargo xtask bench-check`).
pub fn render_bench_json(workloads: &[BenchWorkload]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"mts-bench-v1\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        }
    ));
    out.push_str("  \"workloads\": [\n");
    for (i, w) in workloads.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", w.name));
        out.push_str(&format!("      \"events\": {},\n", w.events));
        out.push_str(&format!("      \"frames\": {},\n", w.frames));
        out.push_str(&format!(
            "      \"sim_seconds\": {},\n",
            json_f64(w.sim_seconds)
        ));
        out.push_str(&format!(
            "      \"wall_seconds\": {},\n",
            json_f64(w.wall_seconds)
        ));
        out.push_str(&format!(
            "      \"events_per_sec\": {},\n",
            json_f64(w.events_per_sec())
        ));
        out.push_str(&format!(
            "      \"sim_mpps_per_wall_sec\": {},\n",
            json_f64(w.sim_mpps_per_wall_sec())
        ));
        if let Some(s) = w.speedup_vs_full {
            out.push_str(&format!("      \"speedup_vs_full\": {},\n", json_f64(s)));
        }
        out.push_str("      \"dispatch\": {");
        for (j, (k, v)) in w.dispatch.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{k}\": {v}"));
        }
        out.push_str("}\n");
        out.push_str(if i + 1 == workloads.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiler_counts_events_and_frames() {
        let stats = run_profile_case(ProfileCase::UdpBaseline, true).unwrap();
        assert!(stats.events > 0);
        assert!(stats.frames > 0);
        assert!(stats.sim_seconds > 0.0);
        let total: u64 = stats.dispatch.iter().map(|(_, n)| *n).sum();
        assert_eq!(total, stats.events);
        // The tagged runtime paths must all appear in a p2v run.
        let tags: Vec<&str> = stats.dispatch.iter().map(|(k, _)| *k).collect();
        for expected in ["nic.rx", "vswitch.rx", "vswitch.exec", "gen.tick"] {
            assert!(tags.contains(&expected), "missing dispatch tag {expected}");
        }
    }

    #[test]
    fn churn_and_fanout_cases_run_and_balance() {
        for case in [ProfileCase::MegaflowChurn, ProfileCase::TenantFanout] {
            let stats = run_profile_case(case, true).unwrap();
            assert!(stats.events > 0, "{}: no events", stats.name);
            assert!(stats.frames > 0, "{}: no frames", stats.name);
            let total: u64 = stats.dispatch.iter().map(|(_, n)| *n).sum();
            assert_eq!(total, stats.events, "{}: dispatch imbalance", stats.name);
        }
    }

    #[test]
    fn megaflow_churn_defeats_the_flow_cache() {
        // The same deployment and rate, with and without port churn: churn
        // must turn a hit-dominated cache into a miss-dominated one.
        let run = |dport_span: u16| {
            let spec = DeploymentSpec::mts(
                SecurityLevel::Level2 { compartments: 2 },
                DatapathKind::Kernel,
                ResourceMode::Isolated,
                Scenario::P2v,
            );
            let d = Controller::deploy(spec).unwrap();
            let mut w = World::new(d, RuntimeCfg::for_spec(&spec), 11);
            let mut e = Sim::new();
            w.sink.window = (Time::ZERO, Time::MAX);
            let flows: Vec<(MacAddr, Ipv4Addr)> = w
                .plan
                .tenants
                .iter()
                .map(|t| {
                    let c = spec.compartment_of_tenant(t.index) as usize;
                    (w.plan.compartments[c].in_out[0].1, t.ip)
                })
                .collect();
            start_udp_churn_generator(
                &mut e,
                flows,
                1_000_000.0,
                64,
                Time::from_nanos(3_000_000),
                dport_span,
            );
            e.run_until(&mut w, Time::from_nanos(8_000_000));
            let mut hits = 0;
            let mut misses = 0;
            for vs in &w.vswitches {
                let cs = vs.inst.sw.cache_stats();
                hits += cs.hits;
                misses += cs.misses;
            }
            (hits, misses)
        };
        let (steady_hits, steady_misses) = run(1);
        let (churn_hits, churn_misses) = run(16_384);
        assert!(
            steady_hits > steady_misses * 10,
            "steady traffic should be hit-dominated (hits {steady_hits}, misses {steady_misses})"
        );
        assert!(
            churn_misses > churn_hits * 10,
            "port churn should be miss-dominated (hits {churn_hits}, misses {churn_misses})"
        );
    }

    #[test]
    fn profiler_is_deterministic_in_simulated_terms() {
        let a = run_profile_case(ProfileCase::UdpLevel2, true).unwrap();
        let b = run_profile_case(ProfileCase::UdpLevel2, true).unwrap();
        assert_eq!(a.events, b.events);
        assert_eq!(a.frames, b.frames);
        assert_eq!(a.dispatch, b.dispatch);
    }

    #[test]
    fn bench_json_shape() {
        let stats = ProfileStats {
            name: "x",
            events: 10,
            frames: 5,
            sim_seconds: 0.01,
            dispatch: vec![("nic.rx", 6), ("gen.tick", 4)],
        };
        let text = render_bench_json(&[bench_workload(&stats, 0.5)]);
        assert!(text.contains("\"schema\": \"mts-bench-v1\""));
        assert!(text.contains("\"events\": 10"));
        assert!(text.contains("\"events_per_sec\": 20.000000"));
        assert!(text.contains("\"sim_mpps_per_wall_sec\": 0.000010"));
        assert!(text.contains("\"dispatch\": {\"nic.rx\": 6, \"gen.tick\": 4}"));
        // Zero wall time must not divide by zero.
        let z = bench_workload(&stats, 0.0);
        assert_eq!(z.events_per_sec(), 0.0);
    }

    #[test]
    fn panel_csvs_are_deterministic() {
        let a = run_slo_panel(true).unwrap();
        let b = run_slo_panel(true).unwrap();
        assert_eq!(matrix_csv(&a.cells), matrix_csv(&b.cells));
        assert_eq!(accuracy_csv(&a.accuracy), accuracy_csv(&b.accuracy));
        assert_eq!(
            conservation_csv(&a.conservation),
            conservation_csv(&b.conservation)
        );
        assert!(
            a.self_check().is_empty(),
            "panel self-check failed: {:?}",
            a.self_check()
        );
    }
}
