//! Regeneration of every table and figure in the paper's evaluation.
//!
//! Panel inventory (see DESIGN.md §4):
//!
//! - Fig. 5(a,d,g): aggregate throughput, shared / isolated / DPDK.
//! - Fig. 5(b,e,h): 64 B latency at 10 kpps.
//! - Fig. 5(c,f,i): cores and hugepages.
//! - Sec. 4.2: latency vs packet size (64/512/1500/2048 B).
//! - Fig. 6(a,f,k): iperf; (b,g,l)/(d,i,n): Apache; (c,h,m)/(e,j,o):
//!   Memcached — throughput and response time per resource mode.
//! - Table 1: the vswitch design survey.
//! - Sec. 3.2: VF counts.
//! - Sec. 2.2/2.3: the isolation matrix (attack suite).

use mts_core::results::ThroughputReport;
use mts_core::spec::{DeploymentSpec, Scenario, SecurityLevel};
use mts_core::testbed::{fig5_matrix, RunOpts, Testbed};
use mts_core::vfplan::VfBudget;
use mts_core::workloads::{run_workload_repeated, Workload, WorkloadOpts, WorkloadResult};
use mts_core::{attacks, Controller};
use mts_host::ResourceMode;
use mts_vswitch::DatapathKind;

/// Global options for a reproduction pass.
#[derive(Clone, Copy, Debug)]
pub struct ReproOpts {
    /// Scale factor on measurement windows (1.0 = the defaults; use
    /// smaller values for quick passes).
    pub scale: f64,
    /// Seeds (the paper repeats every measurement 5 times).
    pub reps: u64,
}

impl Default for ReproOpts {
    fn default() -> Self {
        ReproOpts {
            scale: 1.0,
            reps: 3,
        }
    }
}

impl ReproOpts {
    /// A fast smoke-test pass.
    pub fn quick() -> Self {
        ReproOpts {
            scale: 0.12,
            reps: 1,
        }
    }

    fn seeds(&self) -> Vec<u64> {
        (1..=self.reps.max(1)).collect()
    }
}

/// A resource-mode row of Fig. 5 (one of the three figure rows).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fig5Panel {
    /// Fig. 5(a,b,c): shared vswitch core.
    Shared,
    /// Fig. 5(d,e,f): isolated cores.
    Isolated,
    /// Fig. 5(g,h,i): Level-3 (DPDK), isolated.
    Dpdk,
}

impl Fig5Panel {
    /// All rows.
    pub const ALL: [Fig5Panel; 3] = [Fig5Panel::Shared, Fig5Panel::Isolated, Fig5Panel::Dpdk];

    /// Row label.
    pub fn label(self) -> &'static str {
        match self {
            Fig5Panel::Shared => "shared",
            Fig5Panel::Isolated => "isolated",
            Fig5Panel::Dpdk => "dpdk (Level-3)",
        }
    }

    /// The deployment matrix of this row for a scenario.
    pub fn matrix(self, scenario: Scenario) -> Vec<DeploymentSpec> {
        match self {
            Fig5Panel::Shared => fig5_matrix(ResourceMode::Shared, DatapathKind::Kernel, scenario),
            Fig5Panel::Isolated => {
                fig5_matrix(ResourceMode::Isolated, DatapathKind::Kernel, scenario)
            }
            Fig5Panel::Dpdk => fig5_matrix(ResourceMode::Isolated, DatapathKind::Dpdk, scenario),
        }
    }
}

/// Runs one Fig. 5 row: returns (throughput, latency, resources) reports.
pub fn fig5_panel(
    panel: Fig5Panel,
    opts: ReproOpts,
) -> (ThroughputReport, ThroughputReport, ThroughputReport) {
    let (t_name, l_name, r_name) = match panel {
        Fig5Panel::Shared => ("Fig 5(a)", "Fig 5(b)", "Fig 5(c)"),
        Fig5Panel::Isolated => ("Fig 5(d)", "Fig 5(e)", "Fig 5(f)"),
        Fig5Panel::Dpdk => ("Fig 5(g)", "Fig 5(h)", "Fig 5(i)"),
    };
    let mut tput = ThroughputReport::new(format!(
        "{t_name} aggregate throughput, {} mode, 64B line rate",
        panel.label()
    ));
    let mut lat = ThroughputReport::new(format!(
        "{l_name} one-way latency, {} mode, 64B @ 10 kpps",
        panel.label()
    ));
    let mut res = ThroughputReport::new(format!("{r_name} resources, {} mode", panel.label()));
    for scenario in Scenario::ALL {
        for spec in panel.matrix(scenario) {
            crate::precheck::precheck_or_panic(spec);
            let tb = Testbed::new(spec);
            let t_opts = RunOpts::throughput().scaled(opts.scale);
            if let Ok(m) = tb.run_repeated(t_opts, &opts.seeds()) {
                tput.rows.push(m);
            }
            let l_opts = RunOpts::latency().scaled(opts.scale);
            if let Ok(m) = tb.run(l_opts) {
                if scenario == Scenario::P2p {
                    res.rows.push(m.clone());
                }
                lat.rows.push(m);
            }
        }
    }
    (tput, lat, res)
}

/// The Sec. 4.2 packet-size latency sweep (64/512/1500/2048 B).
pub fn pktsize_sweep(opts: ReproOpts) -> ThroughputReport {
    let mut rep = ThroughputReport::new("Sec 4.2 latency vs packet size, p2v isolated, 10 kpps");
    for wire_len in [64u32, 512, 1500, 2048] {
        for spec in [
            DeploymentSpec::baseline(
                DatapathKind::Kernel,
                ResourceMode::Isolated,
                1,
                Scenario::P2v,
            ),
            DeploymentSpec::mts(
                SecurityLevel::Level1,
                DatapathKind::Kernel,
                ResourceMode::Isolated,
                Scenario::P2v,
            ),
        ] {
            crate::precheck::precheck_or_panic(spec);
            let o = RunOpts::latency()
                .scaled(opts.scale)
                .with_wire_len(wire_len);
            if let Ok(mut m) = Testbed::new(spec).run(o) {
                m.config = format!("{} {}B", m.config, wire_len);
                rep.rows.push(m);
            }
        }
    }
    rep
}

/// One Fig. 6 panel set: a workload across the configuration matrix of a
/// resource-mode row, in p2v and v2v.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Fig6Panel {
    /// The resource-mode row.
    pub row: Fig5Panel,
    /// The workload column.
    pub workload: Workload,
}

impl Fig6Panel {
    /// Panel name as in the paper's figure.
    pub fn name(self) -> &'static str {
        match (self.row, self.workload) {
            (Fig5Panel::Shared, Workload::Iperf) => "Fig 6(a)",
            (Fig5Panel::Shared, Workload::Apache) => "Fig 6(b,d)",
            (Fig5Panel::Shared, Workload::Memcached) => "Fig 6(c,e)",
            (Fig5Panel::Isolated, Workload::Iperf) => "Fig 6(f)",
            (Fig5Panel::Isolated, Workload::Apache) => "Fig 6(g,i)",
            (Fig5Panel::Isolated, Workload::Memcached) => "Fig 6(h,j)",
            (Fig5Panel::Dpdk, Workload::Iperf) => "Fig 6(k)",
            (Fig5Panel::Dpdk, Workload::Apache) => "Fig 6(l,n)",
            (Fig5Panel::Dpdk, Workload::Memcached) => "Fig 6(m,o)",
        }
    }
}

/// Runs one Fig. 6 panel; returns one result per configuration × scenario.
pub fn fig6_panel(panel: Fig6Panel, opts: ReproOpts) -> Vec<WorkloadResult> {
    let mut out = Vec::new();
    let mut w_opts = WorkloadOpts::default();
    // TCP needs slow-start ramp and SYN-RTO recovery time: never scale the
    // workload windows below a quarter of the defaults.
    w_opts.duration = w_opts.duration.mul_f64(opts.scale.max(0.25));
    w_opts.warmup = w_opts.warmup.mul_f64(opts.scale.max(0.25));
    for scenario in [Scenario::P2v, Scenario::V2v] {
        for spec in panel.row.matrix(scenario) {
            crate::precheck::precheck_or_panic(spec);
            if let Ok(r) = run_workload_repeated(spec, panel.workload, w_opts, &opts.seeds()) {
                out.push(r);
            }
        }
    }
    out
}

/// Renders Fig. 6 results as an aligned table.
pub fn render_fig6(name: &str, workload: Workload, rows: &[WorkloadResult]) -> String {
    let mut out = format!("== {name} {} ==\n", workload.label());
    out.push_str(&format!(
        "{:<26} {:>5}  {:>14} {:>9}  {:>13} {:>12} {:>12}\n",
        "config",
        "scen",
        workload.unit(),
        "ci95",
        "mean resp ms",
        "p50 resp ms",
        "p99 resp ms"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<26} {:>5}  {:>14.2} {:>9.2}  {:>13.3} {:>12.3} {:>12.3}\n",
            r.config,
            r.scenario,
            r.throughput,
            r.ci95,
            r.latency.mean / 1e6,
            r.latency.p50 as f64 / 1e6,
            r.latency.p99 as f64 / 1e6,
        ));
    }
    out
}

/// The Sec. 3.2 VF-count table.
pub fn vf_count_table() -> String {
    let mut out = String::from("== Sec 3.2 VF budget (single-port accounting) ==\n");
    out.push_str(&format!(
        "{:<22} {:>8} {:>8} {:>10} {:>7}\n",
        "level", "tenants", "in/out", "gateways", "total"
    ));
    for (level, tenants) in [
        (SecurityLevel::Level1, 1u32),
        (SecurityLevel::Level1, 4),
        (SecurityLevel::Level2 { compartments: 2 }, 2),
        (SecurityLevel::Level2 { compartments: 4 }, 4),
    ] {
        let b = VfBudget::for_level(level, tenants, 1);
        out.push_str(&format!(
            "{:<22} {:>8} {:>8} {:>10} {:>7}\n",
            level.label(),
            tenants,
            b.in_out,
            b.gateways + b.tenant_vms,
            b.total()
        ));
    }
    out
}

/// The isolation matrix across the security-level ladder.
pub fn isolation_matrix() -> String {
    let mut out = String::from("== Isolation matrix (threat model of Sec. 2.2) ==\n");
    match attacks::evaluate_ladder() {
        Ok(reports) => {
            for r in reports {
                out.push_str(&format!("{r}\n"));
            }
        }
        Err(e) => out.push_str(&format!("evaluation failed: {e}\n")),
    }
    out
}

/// Quick consistency check used by benches: the ingress/egress chain of a
/// deployment forwards a canonical probe.
pub fn smoke(spec: DeploymentSpec) -> bool {
    Controller::deploy(spec).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vf_table_contains_paper_numbers() {
        let t = vf_count_table();
        assert!(t.contains(" 3\n"), "L1/1 tenant = 3 VFs:\n{t}");
        assert!(t.contains(" 9\n"), "L1/4 tenants = 9 VFs:\n{t}");
        assert!(t.contains(" 6\n"), "L2/2 tenants = 6 VFs:\n{t}");
        assert!(t.contains(" 12\n"), "L2/4 tenants = 12 VFs:\n{t}");
    }

    #[test]
    fn isolation_matrix_renders() {
        let m = isolation_matrix();
        assert!(m.contains("MAC spoofing"));
        assert!(m.contains("Baseline"));
    }

    #[test]
    fn panel_matrices_are_nonempty() {
        for p in Fig5Panel::ALL {
            for s in Scenario::ALL {
                if s == Scenario::V2v {
                    continue;
                }
                assert!(!p.matrix(s).is_empty());
            }
        }
    }

    #[test]
    fn quick_fig5_shared_p2p_row_runs() {
        let opts = ReproOpts {
            scale: 0.02,
            reps: 1,
        };
        // Just one configuration to keep the test fast.
        let spec = DeploymentSpec::mts(
            SecurityLevel::Level1,
            DatapathKind::Kernel,
            ResourceMode::Shared,
            Scenario::P2p,
        );
        let m = Testbed::new(spec)
            .run(RunOpts::throughput().scaled(opts.scale))
            .unwrap();
        assert!(m.throughput_pps > 0.0);
    }
}
