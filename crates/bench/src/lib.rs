//! Figure-reproduction harness for the MTS paper.
//!
//! [`figures`] regenerates every panel of Fig. 5 and Fig. 6, Table 1, the
//! Sec. 3.2 VF-count table, the Sec. 4.2 packet-size sweep and the
//! isolation matrix; the `repro` binary prints them and writes CSV files.
//! The Criterion benches under `benches/` exercise the same code paths at
//! reduced windows (one bench per table/figure, plus substrate
//! microbenchmarks).
//!
//! Every compartmentalized scenario is statically verified by
//! `mts-isocheck` before it is simulated ([`precheck`]); the `repro verify`
//! target runs the full static suite, including seeded-misconfiguration
//! negative controls. See `VERIFICATION.md`.

pub mod figures;
pub mod precheck;
pub mod slo;

pub use slo::{
    bench_workload, render_bench_json, run_profile_case, run_slo_panel, BenchWorkload, ProfileCase,
    ProfileStats, SloPanel,
};

pub use figures::{
    fig5_panel, fig6_panel, isolation_matrix, pktsize_sweep, vf_count_table, Fig5Panel, Fig6Panel,
    ReproOpts,
};
