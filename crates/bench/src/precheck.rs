//! Static pre-flight verification of deployments before simulation.
//!
//! Every scenario the reproduction harness is about to simulate is first
//! passed through the `mts-isocheck` header-space analysis: a
//! compartmentalized configuration that fails isolation or complete
//! mediation aborts the run *before* a single packet moves, with the
//! verifier's counterexample in the panic message. Baseline configurations
//! are analyzed informationally only (they share one datapath by design and
//! have no mediation guarantee to verify; see `VERIFICATION.md`).
//!
//! Verdicts are memoized per configuration label, so sweeps that revisit
//! the same spec (repetitions, packet-size ladders) pay the analysis cost
//! once.

use mts_core::spec::DeploymentSpec;
use std::collections::BTreeSet;
use std::sync::Mutex;

static VERIFIED: Mutex<BTreeSet<String>> = Mutex::new(BTreeSet::new());

/// Statically verifies isolation and complete mediation for `spec`.
///
/// Returns `Err` with a rendered report if the configuration is
/// compartmentalized and the analysis finds a violation, or if the analysis
/// itself cannot run (undeployable spec, domain overflow).
pub fn precheck(spec: DeploymentSpec) -> Result<(), String> {
    let label = spec.label();
    if VERIFIED.lock().map(|s| s.contains(&label)).unwrap_or(false) {
        return Ok(());
    }
    let report = match mts_isocheck::verify_spec(spec) {
        Ok(r) => r,
        // An undeployable spec is not a verification failure: the simulation
        // path reports the same deploy error and skips the configuration.
        Err(mts_isocheck::VerifyError::Deploy(_)) => return Ok(()),
        Err(e @ mts_isocheck::VerifyError::Domain(_)) => {
            return Err(format!("{label}: static verification could not run: {e}"));
        }
    };
    if !report.informational && !report.is_clean() {
        return Err(format!("static verification failed for {label}:\n{report}"));
    }
    if let Ok(mut s) = VERIFIED.lock() {
        s.insert(label);
    }
    Ok(())
}

/// [`precheck`], panicking on failure: the harness must not start a
/// simulation on a configuration that fails static verification.
pub fn precheck_or_panic(spec: DeploymentSpec) {
    if let Err(e) = precheck(spec) {
        panic!("{e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mts_core::spec::{Scenario, SecurityLevel};
    use mts_host::ResourceMode;
    use mts_vswitch::DatapathKind;

    #[test]
    fn shipped_specs_pass_and_memoize() {
        let spec = DeploymentSpec::mts(
            SecurityLevel::Level1,
            DatapathKind::Kernel,
            ResourceMode::Shared,
            Scenario::P2v,
        );
        precheck(spec).unwrap();
        // Second call hits the memo (still Ok).
        precheck(spec).unwrap();
        assert!(VERIFIED.lock().unwrap().contains(&spec.label()));
    }

    #[test]
    fn baseline_is_not_blocked() {
        let spec =
            DeploymentSpec::baseline(DatapathKind::Kernel, ResourceMode::Shared, 1, Scenario::P2v);
        precheck(spec).unwrap();
    }
}
