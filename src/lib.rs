//! MTS: Bringing Multi-Tenancy to Virtual Networking — facade crate.
//!
//! This crate re-exports the full reproduction stack so applications can
//! depend on a single crate. See the README for an architecture overview and
//! `DESIGN.md` for the system inventory.
//!
//! The layering, bottom-up:
//!
//! - [`sim`] — deterministic discrete-event engine, CPU/link models, stats.
//! - [`net`] — packet model and wire formats (Ethernet, VLAN, IPv4, …).
//! - [`nic`] — SR-IOV NIC with an embedded VEB L2 switch.
//! - [`vswitch`] — OpenFlow-style flow-table virtual switch (OvS analogue).
//! - [`host`] — VMs, vhost channels, Linux bridge, resource accounting.
//! - [`tcp`] — a Reno TCP stack for the workload evaluation.
//! - [`apps`] — iperf / HTTP / Memcached workload applications.
//! - [`telemetry`] — deterministic metrics, frame-journey tracing and the
//!   complete-mediation auditor (see `OBSERVABILITY.md`).
//! - [`core`] — the MTS architecture itself: security levels, deployment
//!   builder, controller, testbed and attack validation.
//! - [`isocheck`] — static header-space verification of isolation and
//!   complete mediation over deployed configurations (see
//!   `VERIFICATION.md`).
//! - [`faults`] — deterministic fault injection and the blast-radius /
//!   recovery experiments over the security levels (see
//!   `ROBUSTNESS.md`).
//!
//! # Examples
//!
//! Deploy Level-1 and measure the p2v scenario end to end:
//!
//! ```
//! use mts::core::spec::{DeploymentSpec, Scenario, SecurityLevel};
//! use mts::core::testbed::{RunOpts, Testbed};
//! use mts::host::ResourceMode;
//! use mts::sim::Dur;
//! use mts::vswitch::DatapathKind;
//!
//! let spec = DeploymentSpec::mts(
//!     SecurityLevel::Level1,
//!     DatapathKind::Kernel,
//!     ResourceMode::Isolated,
//!     Scenario::P2v,
//! );
//! let opts = RunOpts {
//!     rate_pps: 50_000.0,
//!     wire_len: 64,
//!     warmup: Dur::millis(2),
//!     measure: Dur::millis(8),
//!     seed: 1,
//! };
//! let m = Testbed::new(spec).run(opts).expect("runs");
//! assert!(m.loss() < 0.01);
//! assert!(m.per_flow.iter().all(|&c| c > 0));
//! ```

pub use mts_apps as apps;
pub use mts_core as core;
pub use mts_faults as faults;
pub use mts_host as host;
pub use mts_isocheck as isocheck;
pub use mts_net as net;
pub use mts_nic as nic;
pub use mts_sim as sim;
pub use mts_tcp as tcp;
pub use mts_telemetry as telemetry;
pub use mts_vswitch as vswitch;
