//! The security-level ladder: attacks vs Baseline / Level-1 / Level-2 / -3.
//!
//! ```text
//! cargo run --release --example security_levels
//! ```
//!
//! Executes the paper's threat model (Sec. 2.2) as concrete attack attempts
//! against each configuration and prints the isolation matrix, plus the
//! Sec. 3.2 VF budget the operator pays for each level.

use mts::core::attacks;
use mts::core::spec::SecurityLevel;
use mts::core::vfplan::VfBudget;

fn main() {
    println!("=== Isolation matrix (Sec. 2.2 threat model) ===\n");
    let ladder = attacks::evaluate_ladder().expect("evaluable ladder");
    for report in &ladder {
        println!("{report}");
    }

    println!("=== Attacks contained per level ===");
    for report in &ladder {
        println!(
            "  {:<34} {}/{}",
            report.config,
            report.blocked_count(),
            report.outcomes.len()
        );
    }

    println!("\n=== The price: SR-IOV VFs per configuration (Sec. 3.2) ===");
    println!("{:<28} {:>8} {:>7}", "level", "tenants", "VFs");
    for (level, tenants) in [
        (SecurityLevel::Level1, 1u32),
        (SecurityLevel::Level1, 4),
        (SecurityLevel::Level2 { compartments: 2 }, 2),
        (SecurityLevel::Level2 { compartments: 4 }, 4),
    ] {
        println!(
            "{:<28} {:>8} {:>7}",
            level.label(),
            tenants,
            VfBudget::for_level(level, tenants, 1).total()
        );
    }
    println!("\n(The SR-IOV standard allows 64 VFs per PF: even Level-2 with");
    println!(" 4 tenants uses only 12 — isolation is cheap in VFs.)");
}
