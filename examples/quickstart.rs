//! Quickstart: deploy MTS Level-1, push packets through it, measure.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the single-vswitch-VM deployment of the paper's Fig. 1(b): four
//! tenants behind one vswitch compartment, complete mediation through the
//! SR-IOV NIC, and runs the physical-to-virtual forwarding experiment.

use mts::core::spec::{DeploymentSpec, Scenario, SecurityLevel};
use mts::core::testbed::{RunOpts, Testbed};
use mts::core::Controller;
use mts::host::ResourceMode;
use mts::vswitch::DatapathKind;

fn main() {
    // 1. Describe the deployment: Level-1 (one vswitch VM), kernel
    //    datapath, isolated vswitch core, p2v traffic.
    let spec = DeploymentSpec::mts(
        SecurityLevel::Level1,
        DatapathKind::Kernel,
        ResourceMode::Isolated,
        Scenario::P2v,
    );

    // 2. The controller programs the NIC (VFs, VLANs, anti-spoofing,
    //    filters) and installs the ingress/egress chain flow rules.
    let deployment = Controller::deploy(spec).expect("deployable configuration");
    println!(
        "deployed {} vswitch compartment(s), {} VFs, {} flow rules",
        deployment.vswitches.len(),
        deployment.plan.total_vfs(),
        deployment
            .vswitches
            .iter()
            .map(|v| v.sw.rule_count())
            .sum::<usize>()
    );
    for t in &deployment.plan.tenants {
        println!(
            "  tenant {}: vlan {}  ip {}  vf mac {}",
            t.index, t.vlan, t.ip, t.vf[0].1
        );
    }

    // 3. Run the Sec. 4 measurement: 64 B probes at line rate, then the
    //    latency variant at 10 kpps.
    let tb = Testbed::new(spec);
    let tput = tb
        .run(RunOpts::throughput())
        .expect("throughput run completes");
    println!(
        "\nthroughput: {:.3} Mpps aggregate ({} of {} frames in the window, loss {:.1}%)",
        tput.mpps(),
        tput.received,
        tput.sent,
        tput.loss() * 100.0
    );
    println!("per-flow: {:?}", tput.per_flow);
    println!(
        "resources: {} cores, {} hugepages",
        tput.cores, tput.hugepages
    );

    let lat = tb.run(RunOpts::latency()).expect("latency run completes");
    println!(
        "latency:   p50 {:.1} us  p99 {:.1} us (one-way, 64 B @ 10 kpps)",
        lat.latency.p50 as f64 / 1e3,
        lat.latency.p99 as f64 / 1e3
    );
}
