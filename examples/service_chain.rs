//! NFV service chaining (the paper's v2v scenario).
//!
//! ```text
//! cargo run --release --example service_chain
//! ```
//!
//! In v2v, packets chain through two tenant VMs before leaving the server
//! — the paper's stand-in for network function virtualization. This
//! example sweeps the offered load and shows where each configuration
//! saturates and what the chain costs in latency.

use mts::core::spec::{DeploymentSpec, Scenario, SecurityLevel};
use mts::core::testbed::{RunOpts, Testbed};
use mts::host::ResourceMode;
use mts::sim::Dur;
use mts::vswitch::DatapathKind;

fn main() {
    let configs = [
        DeploymentSpec::baseline(
            DatapathKind::Kernel,
            ResourceMode::Isolated,
            2,
            Scenario::V2v,
        ),
        DeploymentSpec::mts(
            SecurityLevel::Level2 { compartments: 2 },
            DatapathKind::Kernel,
            ResourceMode::Isolated,
            Scenario::V2v,
        ),
    ];

    println!("offered load sweep, v2v service chain, 64 B frames\n");
    println!(
        "{:<26} {:>10} {:>12} {:>10} {:>10}",
        "config", "offered", "delivered", "loss %", "p50 us"
    );
    for spec in configs {
        let tb = Testbed::new(spec);
        for offered_mpps in [0.05, 0.2, 0.5, 2.0, 14.0] {
            let opts = RunOpts {
                rate_pps: offered_mpps * 1e6,
                wire_len: 64,
                warmup: Dur::millis(12),
                measure: Dur::millis(10),
                seed: 1,
            };
            let m = tb.run(opts).expect("run completes");
            println!(
                "{:<26} {:>8.2}M {:>10.3}M {:>9.1}% {:>10.1}",
                m.config,
                offered_mpps,
                m.mpps(),
                m.loss() * 100.0,
                m.latency.p50 as f64 / 1e3
            );
        }
        println!();
    }
    println!("Each chained packet takes two extra round trips to the NIC in");
    println!("MTS; the Baseline pays four vhost copies on the vswitch core —");
    println!("which is why MTS still wins ~2x in the kernel datapath.");
}
