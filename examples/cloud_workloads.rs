//! Cloud applications on MTS vs the Baseline (the paper's Sec. 5 story).
//!
//! ```text
//! cargo run --release --example cloud_workloads
//! ```
//!
//! Hosts a web server and a key-value store in tenant VMs and benchmarks
//! them from the load generator, comparing the Baseline's co-located
//! vswitch against MTS with four compartments on one shared core — the
//! configuration the paper's conclusion recommends ("biting the bullet for
//! shared resources offers 4x isolation and approximately 1.5-2x
//! application performance").

use mts::core::spec::{DeploymentSpec, Scenario, SecurityLevel};
use mts::core::workloads::{run_workload, Workload, WorkloadOpts};
use mts::host::ResourceMode;
use mts::sim::Dur;
use mts::vswitch::DatapathKind;

fn main() {
    let opts = WorkloadOpts {
        duration: Dur::millis(600),
        warmup: Dur::millis(600),
        ab_concurrency: 100,
        memslap_connections: 32,
        seed: 1,
    };

    let baseline =
        DeploymentSpec::baseline(DatapathKind::Kernel, ResourceMode::Shared, 1, Scenario::P2v);
    let mts_shared = DeploymentSpec::mts(
        SecurityLevel::Level2 { compartments: 4 },
        DatapathKind::Kernel,
        ResourceMode::Shared,
        Scenario::P2v,
    );

    for workload in [Workload::Iperf, Workload::Apache, Workload::Memcached] {
        let base = run_workload(baseline, workload, opts).expect("baseline runs");
        let mts = run_workload(mts_shared, workload, opts).expect("mts runs");
        println!("=== {} ===", workload.label());
        println!(
            "  {:<28} {:>12.2} {}   mean resp {:>8.3} ms",
            base.config,
            base.throughput,
            workload.unit(),
            base.latency.mean / 1e6
        );
        println!(
            "  {:<28} {:>12.2} {}   mean resp {:>8.3} ms",
            mts.config,
            mts.throughput,
            workload.unit(),
            mts.latency.mean / 1e6
        );
        println!(
            "  -> MTS/Baseline throughput: {:.2}x (paper: 1.5-2x, one extra core)\n",
            mts.throughput / base.throughput.max(1e-9)
        );
    }
}
