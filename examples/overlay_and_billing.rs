//! Overlay networks, per-tenant billing and the noisy-neighbor experiment
//! (the paper's Sec. 3.2 system support + Sec. 6 discussion, as code).
//!
//! ```text
//! cargo run --release --example overlay_and_billing
//! ```

use mts::core::billing;
use mts::core::controller::Controller;
use mts::core::overlay::{install_overlay_rules, start_overlay_generator, OverlayConfig};
use mts::core::perfiso::{self, NoisyOpts};
use mts::core::runtime::{RuntimeCfg, Sim, World};
use mts::core::spec::{DeploymentSpec, Scenario, SecurityLevel};
use mts::host::ResourceMode;
use mts::net::{MacAddr, Vni};
use mts::sim::Time;
use mts::vswitch::DatapathKind;
use std::net::Ipv4Addr;

fn main() {
    // --- 1. VXLAN overlay: tenants reached through per-tenant tunnels. ---
    let spec = DeploymentSpec::mts(
        SecurityLevel::Level2 { compartments: 2 },
        DatapathKind::Kernel,
        ResourceMode::Isolated,
        Scenario::P2v,
    );
    let mut d = Controller::build(spec, 2).expect("deployable");
    let overlay = OverlayConfig::default();
    install_overlay_rules(&mut d, overlay).expect("overlay rules install");
    let mut w = World::new(d, RuntimeCfg::for_spec(&spec), 7);
    w.sink.window = (Time::ZERO, Time::MAX);
    let mut e = Sim::new();
    let flows: Vec<(MacAddr, Ipv4Addr, Vni)> = w
        .plan
        .tenants
        .iter()
        .map(|t| {
            let c = w.spec.compartment_of_tenant(t.index) as usize;
            (
                w.plan.compartments[c].in_out[0].1,
                t.ip,
                overlay.vni(t.index),
            )
        })
        .collect();
    println!(
        "=== VXLAN overlay (per-tenant VNIs {}..) ===",
        overlay.vni_base
    );
    start_overlay_generator(
        &mut e,
        flows,
        overlay,
        100_000.0,
        256,
        Time::from_nanos(10_000_000),
    );
    e.run_until(&mut w, Time::from_nanos(40_000_000));
    println!(
        "encap/decap round trip: sent {}  received {}  p50 {:.1} us",
        w.sink.sent,
        w.sink.received,
        w.sink.latency.percentile(50.0) as f64 / 1e3
    );

    // --- 2. Billing: itemized per-tenant resource accounting (Sec. 6). ---
    println!("\n=== Per-tenant billing from the same run ===");
    print!("{}", billing::bill(&w));

    // --- 3. Noisy neighbor: performance isolation under a flooding tenant.
    println!("=== Noisy neighbor (tenant 0 floods, tenant 1 measured) ===");
    let opts = NoisyOpts::default();
    let mut rows = Vec::new();
    for spec in [
        DeploymentSpec::baseline(DatapathKind::Kernel, ResourceMode::Shared, 1, Scenario::P2v),
        DeploymentSpec::mts(
            SecurityLevel::Level2 { compartments: 2 },
            DatapathKind::Kernel,
            ResourceMode::Shared,
            Scenario::P2v,
        ),
        DeploymentSpec::mts(
            SecurityLevel::Level2 { compartments: 2 },
            DatapathKind::Kernel,
            ResourceMode::Isolated,
            Scenario::P2v,
        ),
    ] {
        rows.push(perfiso::noisy_neighbor(spec, opts).expect("experiment runs"));
    }
    print!("{}", perfiso::render(&rows));
    println!("\nThe Baseline's victim shares the flooded datapath; MTS Level-2");
    println!("isolated gives the victim its own vswitch VM and core, so the");
    println!("attack barely registers — the paper's performance-isolation case.");
}
