//! The cycle-conservation identity, end to end: at every security level,
//! what the biller attributes plus what it declares unattributable equals
//! the core scheduler's measured vswitch cycle total — *exactly*, in
//! integer nanoseconds, with no tolerance. The same identity must survive
//! a vswitch crash with supervisor recovery, because billing that drifts
//! under faults is billing that can be gamed by inducing faults.

use mts::core::controller::Controller;
use mts::core::meters::Layer;
use mts::core::runtime::{start_udp_generator, RuntimeCfg, Sim, World};
use mts::core::spec::{DeploymentSpec, Scenario, SecurityLevel};
use mts::core::{bill, billing_accuracy};
use mts::faults::{run_traced, FaultCase, FaultOpts};
use mts::host::ResourceMode;
use mts::net::MacAddr;
use mts::sim::{Dur, Time};
use mts::vswitch::DatapathKind;
use std::net::Ipv4Addr;

fn every_level() -> Vec<DeploymentSpec> {
    vec![
        DeploymentSpec::baseline(DatapathKind::Kernel, ResourceMode::Shared, 1, Scenario::P2v),
        DeploymentSpec::mts(
            SecurityLevel::Level1,
            DatapathKind::Kernel,
            ResourceMode::Shared,
            Scenario::P2v,
        ),
        DeploymentSpec::mts(
            SecurityLevel::Level2 { compartments: 2 },
            DatapathKind::Kernel,
            ResourceMode::Shared,
            Scenario::P2v,
        ),
        DeploymentSpec::mts(
            SecurityLevel::Level2 { compartments: 2 },
            DatapathKind::Kernel,
            ResourceMode::Isolated,
            Scenario::P2v,
        ),
        DeploymentSpec::mts(
            SecurityLevel::Level2 { compartments: 4 },
            DatapathKind::Kernel,
            ResourceMode::Isolated,
            Scenario::P2v,
        ),
    ]
}

fn run_udp(spec: DeploymentSpec, seed: u64) -> World {
    let d = Controller::deploy(spec).expect("deployable");
    let mut w = World::new(d, RuntimeCfg::for_spec(&spec), seed);
    let mut e = Sim::new();
    w.sink.window = (Time::ZERO, Time::MAX);
    let flows: Vec<(MacAddr, Ipv4Addr)> = w
        .plan
        .tenants
        .iter()
        .map(|t| {
            let dmac = if spec.level.compartmentalized() {
                let c = spec.compartment_of_tenant(t.index) as usize;
                w.plan.compartments[c].in_out[0].1
            } else {
                Controller::baseline_router_mac(0)
            };
            (dmac, t.ip)
        })
        .collect();
    start_udp_generator(&mut e, flows, 150_000.0, 128, Time::from_nanos(5_000_000));
    e.run_until(&mut w, Time::from_nanos(12_000_000));
    w
}

/// The conservation identity, asserted exactly on a settled world.
fn assert_conserved(w: &World, what: &str) {
    let report = bill(w);
    let measured = w.measured_vswitch_cpu();
    assert_eq!(
        report.total_cpu() + report.unattributed_cpu,
        measured,
        "{what}: billed + unattributed != measured"
    );
    assert!(report.conserved, "{what}: report must self-mark conserved");
    assert_eq!(
        w.meters.layer_total(Layer::Vswitch),
        measured,
        "{what}: vswitch cycle meter disagrees with the core ledger"
    );
    assert_eq!(
        w.meters.layer_total(Layer::NicVeb),
        w.nic.veb_busy_total(),
        "{what}: NIC VEB meter disagrees with the NIC's own ledger"
    );
    assert!(
        w.meters.internally_consistent(),
        "{what}: meters lost cycles internally"
    );
    assert!(
        measured > Dur::ZERO,
        "{what}: vacuous — the workload never exercised a vswitch"
    );
}

#[test]
fn conservation_holds_at_every_security_level() {
    for spec in every_level() {
        let w = run_udp(spec, 5);
        assert_conserved(&w, &spec.label());
    }
}

#[test]
fn conservation_is_exact_not_approximate() {
    // Proportional apportionment (shared Level-1) is where rounding would
    // leak: four tenants share one vswitch, so naive floating-point splits
    // lose nanoseconds. The integer largest-remainder split must not.
    let spec = DeploymentSpec::mts(
        SecurityLevel::Level1,
        DatapathKind::Kernel,
        ResourceMode::Shared,
        Scenario::P2v,
    );
    let w = run_udp(spec, 6);
    let report = bill(&w);
    assert_eq!(report.unattributed_cpu, Dur::ZERO);
    let billed_ns: u64 = report
        .tenants
        .iter()
        .map(|t| t.vswitch_cpu.as_nanos())
        .sum();
    assert_eq!(billed_ns, w.measured_vswitch_cpu().as_nanos());
}

#[test]
fn attribution_exactness_improves_with_level() {
    let base = billing_accuracy(&run_udp(every_level()[0], 5));
    let l2 = billing_accuracy(&run_udp(every_level()[4], 5));
    assert_eq!(base.attributed_fraction, 0.0);
    assert!((l2.attributed_fraction - 1.0).abs() < 1e-12);
    assert!(l2.tenants.iter().all(|t| t.exact));
    assert!(l2.max_rel_error() < 1e-12);
}

#[test]
fn conservation_survives_vswitch_crash_and_recovery() {
    let spec = DeploymentSpec::mts(
        SecurityLevel::Level2 { compartments: 2 },
        DatapathKind::Kernel,
        ResourceMode::Isolated,
        Scenario::P2v,
    );
    let opts = FaultOpts {
        rate_pps: 150_000.0,
        wire_len: 128,
        run_for: Dur::millis(15),
        fault_at: Time::from_nanos(5_000_000),
        drain: Dur::millis(12),
        seed: 5,
    };
    let w = run_traced(spec, FaultCase::Crash, opts).expect("deployable");
    // The compartment-0 vswitch died mid-run and the supervisor restarted
    // it; every cycle it burned before, during detection, and after the
    // restart must still be conserved.
    assert_conserved(&w, "L2 crash+recover");
}

#[test]
fn conservation_holds_under_fault_at_every_level() {
    for spec in every_level() {
        let opts = FaultOpts {
            rate_pps: 100_000.0,
            wire_len: 64,
            run_for: Dur::millis(12),
            fault_at: Time::from_nanos(4_000_000),
            drain: Dur::millis(10),
            seed: 7,
        };
        let w = run_traced(spec, FaultCase::Crash, opts).expect("deployable");
        assert_conserved(&w, &format!("{} under crash", spec.label()));
    }
}
