//! Cross-crate end-to-end tests: every security level × scenario forwards
//! traffic correctly through NIC + vswitch + tenants at low offered load.

use mts::core::spec::{DeploymentSpec, Scenario, SecurityLevel};
use mts::core::testbed::{RunOpts, Testbed};
use mts::host::ResourceMode;
use mts::sim::Dur;
use mts::vswitch::DatapathKind;

fn gentle() -> RunOpts {
    RunOpts {
        rate_pps: 40_000.0,
        wire_len: 64,
        warmup: Dur::millis(2),
        // Long enough that window-edge effects (frames generated near the
        // end arriving after it) stay well under the loss tolerance.
        measure: Dur::millis(30),
        seed: 11,
    }
}

fn all_levels() -> Vec<SecurityLevel> {
    vec![
        SecurityLevel::Level1,
        SecurityLevel::Level2 { compartments: 2 },
        SecurityLevel::Level2 { compartments: 4 },
    ]
}

#[test]
fn every_mts_level_forwards_losslessly_at_low_load() {
    for datapath in [DatapathKind::Kernel, DatapathKind::Dpdk] {
        for level in all_levels() {
            for scenario in Scenario::ALL {
                let spec = DeploymentSpec::mts(level, datapath, ResourceMode::Isolated, scenario);
                let m = match Testbed::new(spec).run(gentle()) {
                    Ok(m) => m,
                    // v2v with singleton compartments is unsupported, as in
                    // the paper.
                    Err(_) if scenario == Scenario::V2v => continue,
                    Err(e) => panic!("{level:?} {scenario:?}: {e}"),
                };
                assert!(
                    m.loss() < 0.02,
                    "{level:?} {datapath:?} {scenario}: loss {:.3} drops {:?}",
                    m.loss(),
                    m.drops
                );
                // All four tenant flows arrive.
                assert!(
                    m.per_flow.iter().all(|&c| c > 0),
                    "{level:?} {scenario}: {:?}",
                    m.per_flow
                );
            }
        }
    }
}

#[test]
fn baseline_forwards_losslessly_at_low_load() {
    for datapath in [DatapathKind::Kernel, DatapathKind::Dpdk] {
        for scenario in Scenario::ALL {
            let spec = DeploymentSpec::baseline(datapath, ResourceMode::Shared, 1, scenario);
            let m = Testbed::new(spec).run(gentle()).expect("baseline runs");
            assert!(
                m.loss() < 0.02,
                "baseline {datapath:?} {scenario}: loss {:.3} drops {:?}",
                m.loss(),
                m.drops
            );
        }
    }
}

#[test]
fn latency_orders_by_path_length() {
    // p2p < p2v < v2v for any one configuration.
    let mut medians = Vec::new();
    for scenario in Scenario::ALL {
        let spec = DeploymentSpec::mts(
            SecurityLevel::Level1,
            DatapathKind::Kernel,
            ResourceMode::Isolated,
            scenario,
        );
        let m = Testbed::new(spec).run(gentle()).expect("runs");
        medians.push((scenario.label(), m.latency.p50));
    }
    assert!(
        medians[0].1 < medians[1].1 && medians[1].1 < medians[2].1,
        "latency must grow with path length: {medians:?}"
    );
}

#[test]
fn per_flow_counts_are_balanced() {
    let spec = DeploymentSpec::mts(
        SecurityLevel::Level2 { compartments: 4 },
        DatapathKind::Kernel,
        ResourceMode::Isolated,
        Scenario::P2v,
    );
    let m = Testbed::new(spec).run(gentle()).expect("runs");
    let max = *m.per_flow.iter().max().expect("flows");
    let min = *m.per_flow.iter().min().expect("flows");
    assert!(
        max - min <= max / 10 + 2,
        "flows should be near-balanced: {:?}",
        m.per_flow
    );
}

#[test]
fn frame_size_sweep_is_lossless_and_monotone_in_latency() {
    let spec = DeploymentSpec::mts(
        SecurityLevel::Level1,
        DatapathKind::Kernel,
        ResourceMode::Isolated,
        Scenario::P2v,
    );
    let mut last = 0;
    for wire in [64u32, 512, 1500, 2048] {
        let m = Testbed::new(spec)
            .run(gentle().with_wire_len(wire))
            .expect("runs");
        assert!(m.loss() < 0.02, "{wire}B loss {}", m.loss());
        assert!(
            m.latency.p50 >= last,
            "{wire}B latency regressed: {} < {last}",
            m.latency.p50
        );
        last = m.latency.p50;
    }
}
