//! Reproducibility: identical seeds give bit-identical measurements, and
//! results are stable across nearby seeds.

use mts::core::spec::{DeploymentSpec, Scenario, SecurityLevel};
use mts::core::testbed::{RunOpts, Testbed};
use mts::core::workloads::{run_workload, Workload, WorkloadOpts};
use mts::host::ResourceMode;
use mts::sim::Dur;
use mts::vswitch::DatapathKind;

fn spec() -> DeploymentSpec {
    DeploymentSpec::mts(
        SecurityLevel::Level2 { compartments: 2 },
        DatapathKind::Kernel,
        ResourceMode::Shared,
        Scenario::P2v,
    )
}

fn opts(seed: u64) -> RunOpts {
    RunOpts {
        rate_pps: 500_000.0,
        wire_len: 64,
        warmup: Dur::millis(4),
        measure: Dur::millis(6),
        seed,
    }
}

#[test]
fn same_seed_is_bit_identical() {
    let a = Testbed::new(spec()).run(opts(42)).expect("runs");
    let b = Testbed::new(spec()).run(opts(42)).expect("runs");
    assert_eq!(a.sent, b.sent);
    assert_eq!(a.received, b.received);
    assert_eq!(a.per_flow, b.per_flow);
    assert_eq!(a.latency, b.latency);
    assert_eq!(a.drops, b.drops);
}

#[test]
fn different_seeds_agree_within_tolerance() {
    let a = Testbed::new(spec()).run(opts(1)).expect("runs");
    let b = Testbed::new(spec()).run(opts(2)).expect("runs");
    let (x, y) = (a.throughput_pps, b.throughput_pps);
    let rel = (x - y).abs() / x.max(y);
    assert!(rel < 0.15, "seeds diverge too much: {x} vs {y}");
}

#[test]
fn workloads_are_deterministic_too() {
    let w_opts = WorkloadOpts {
        duration: Dur::millis(60),
        warmup: Dur::millis(60),
        ab_concurrency: 10,
        memslap_connections: 4,
        seed: 7,
    };
    let a = run_workload(spec(), Workload::Memcached, w_opts).expect("runs");
    let b = run_workload(spec(), Workload::Memcached, w_opts).expect("runs");
    assert_eq!(a.throughput, b.throughput);
    assert_eq!(a.latency, b.latency);
    assert_eq!(a.per_tenant, b.per_tenant);
}
