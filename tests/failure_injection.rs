//! Failure injection: the datapath degrades gracefully, never panics, and
//! failures stay contained to the tenant they hit.

use mts::core::controller::Controller;
use mts::core::runtime::{start_udp_generator, RuntimeCfg, Sim, World};
use mts::core::spec::{DeploymentSpec, Scenario, SecurityLevel};
use mts::host::ResourceMode;
use mts::net::MacAddr;
use mts::sim::Time;
use mts::telemetry::DropCause;
use mts::vswitch::DatapathKind;
use std::net::Ipv4Addr;

fn build(level: SecurityLevel) -> (World, Sim, Vec<(MacAddr, Ipv4Addr)>) {
    let spec = DeploymentSpec::mts(
        level,
        DatapathKind::Kernel,
        ResourceMode::Isolated,
        Scenario::P2v,
    );
    let d = Controller::deploy(spec).expect("deploys");
    let cfg = RuntimeCfg::for_spec(&spec);
    let mut w = World::new(d, cfg, 31);
    w.sink.window = (Time::ZERO, Time::MAX);
    let flows = w
        .plan
        .tenants
        .iter()
        .map(|t| {
            let c = w.spec.compartment_of_tenant(t.index) as usize;
            (w.plan.compartments[c].in_out[0].1, t.ip)
        })
        .collect();
    (w, Sim::new(), flows)
}

#[test]
fn hot_unplugging_a_tenant_vf_only_kills_that_tenant() {
    let (mut w, mut e, flows) = build(SecurityLevel::Level2 { compartments: 2 });
    start_udp_generator(&mut e, flows, 40_000.0, 64, Time::from_nanos(20_000_000));
    // At t = 8 ms, tenant 0's VF disappears (VM crash / hot-unplug).
    e.schedule_at(Time::from_nanos(8_000_000), |w: &mut World, _e| {
        let (vf, _) = w.plan.tenants[0].vf[0];
        w.vf_owner.remove(&(vf.pf.0, vf.vf.0));
    });
    e.run_until(&mut w, Time::from_nanos(40_000_000));

    // Tenant 0 received roughly the first 8 ms worth; the others the full
    // 20 ms worth (10 kpps each).
    let t0 = w.sink.per_flow[0];
    let t1 = w.sink.per_flow[1];
    assert!(t0 < 110, "tenant 0 should stop around 80 frames: {t0}");
    assert!(t1 > 180, "tenant 1 must be unaffected: {t1}");
    assert!(w.sink.per_flow[2] > 180 && w.sink.per_flow[3] > 180);
    // The loss is visible and attributed.
    assert!(w.drops.get(&DropCause::VfUnclaimed).copied().unwrap_or(0) > 0);
}

#[test]
fn wiping_one_compartments_rules_does_not_touch_the_other() {
    let (mut w, mut e, flows) = build(SecurityLevel::Level2 { compartments: 2 });
    start_udp_generator(&mut e, flows, 40_000.0, 64, Time::from_nanos(20_000_000));
    // At t = 5 ms, compartment 0's controller connection "dies" and its
    // tables are wiped (fail-closed: no rules, no forwarding).
    e.schedule_at(Time::from_nanos(5_000_000), |w: &mut World, _e| {
        w.vswitches[0].inst.sw.clear();
    });
    e.run_until(&mut w, Time::from_nanos(40_000_000));

    // Compartment 0 serves tenants 0 and 2; compartment 1 serves 1 and 3.
    assert!(
        w.sink.per_flow[0] < 70,
        "t0 fails closed: {:?}",
        w.sink.per_flow
    );
    assert!(
        w.sink.per_flow[2] < 70,
        "t2 fails closed: {:?}",
        w.sink.per_flow
    );
    assert!(
        w.sink.per_flow[1] > 180,
        "t1 unaffected: {:?}",
        w.sink.per_flow
    );
    assert!(
        w.sink.per_flow[3] > 180,
        "t3 unaffected: {:?}",
        w.sink.per_flow
    );
}

#[test]
fn rule_reinstallation_recovers_forwarding() {
    let (mut w, mut e, flows) = build(SecurityLevel::Level1);
    start_udp_generator(&mut e, flows, 40_000.0, 64, Time::from_nanos(30_000_000));
    // Wipe at 5 ms; the controller reconciles at 15 ms.
    e.schedule_at(Time::from_nanos(5_000_000), |w: &mut World, _e| {
        w.vswitches[0].inst.sw.clear();
    });
    e.schedule_at(Time::from_nanos(15_000_000), |w: &mut World, _e| {
        // Reinstall the p2v scenario rules exactly as the controller would.
        let spec = w.spec;
        let fresh = Controller::deploy(spec).expect("redeploys");
        let rules: Vec<_> = fresh.vswitches[0].sw.dump_rules().into_iter().collect();
        for (table, rule) in rules {
            w.vswitches[0]
                .inst
                .sw
                .install(table, rule)
                .expect("reinstall");
        }
    });
    e.run_until(&mut w, Time::from_nanos(50_000_000));

    // Roughly: 5 ms up + 10 ms down + 15 ms up = 2/3 of 30 ms delivered.
    let total: u64 = w.sink.per_flow.iter().sum();
    assert!(
        (550..=950).contains(&total),
        "recovery pattern off: {total} ({:?})",
        w.sink.per_flow
    );
    // And every tenant resumed after reconciliation.
    assert!(
        w.sink.per_flow.iter().all(|&c| c > 100),
        "{:?}",
        w.sink.per_flow
    );
}

#[test]
fn zero_rate_and_empty_flow_lists_are_noops() {
    let (mut w, mut e, flows) = build(SecurityLevel::Level1);
    start_udp_generator(
        &mut e,
        Vec::new(),
        40_000.0,
        64,
        Time::from_nanos(1_000_000),
    );
    start_udp_generator(&mut e, flows, 0.0, 64, Time::from_nanos(1_000_000));
    e.run_until(&mut w, Time::from_nanos(5_000_000));
    assert_eq!(w.sink.sent, 0);
    assert_eq!(w.sink.received, 0);
}
