//! Property-based isolation invariants of the NIC-mediated design.
//!
//! Whatever a tenant sends — arbitrary source/destination MACs, IPs and
//! ports — the SR-IOV switch must never deliver its frames to another
//! tenant's VF, to the host PF, or to a gateway VF of a foreign
//! compartment. This is the paper's "complete mediation" property tested
//! adversarially.

use mts::core::controller::Controller;
use mts::core::spec::{DeploymentSpec, Scenario, SecurityLevel};
use mts::host::ResourceMode;
use mts::net::{Frame, MacAddr};
use mts::nic::NicPort;
use mts::vswitch::DatapathKind;
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr::new)
}

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

fn arb_level() -> impl Strategy<Value = SecurityLevel> {
    prop_oneof![
        Just(SecurityLevel::Level1),
        Just(SecurityLevel::Level2 { compartments: 2 }),
        Just(SecurityLevel::Level2 { compartments: 4 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Frames injected from tenant 0's VF never reach another tenant's VF
    /// or the host PF, regardless of header contents.
    #[test]
    fn tenant_frames_cannot_escape_their_vlan(
        level in arb_level(),
        src in arb_mac(),
        dst in arb_mac(),
        sip in arb_ip(),
        dip in arb_ip(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        wire in 64u32..1514,
    ) {
        let spec = DeploymentSpec::mts(
            level,
            DatapathKind::Kernel,
            ResourceMode::Shared,
            Scenario::P2v,
        );
        let mut d = Controller::deploy(spec).expect("deploys");
        let attacker = d.plan.tenants[0].clone();
        let (vf, _) = attacker.vf[0];
        let victim_vfs: Vec<_> = d
            .plan
            .tenants
            .iter()
            .skip(1)
            .map(|t| t.vf[0].0.vf)
            .collect();
        let mut frame = Frame::udp_data(src, dst, sip, dip, sport, dport, wire);
        frame = frame.pad_to(wire);
        let out = d
            .nic
            .ingress(vf.pf, NicPort::Vf(vf.vf), frame)
            .expect("nic switches");
        for delivery in &out {
            prop_assert_ne!(delivery.port, NicPort::Pf, "host reached");
            if let NicPort::Vf(v) = delivery.port {
                prop_assert!(
                    !victim_vfs.contains(&v),
                    "foreign tenant VF {:?} reached by {:?}",
                    v,
                    level
                );
            }
        }
    }

    /// Spoofed source MACs are dropped entirely at the tenant VF.
    #[test]
    fn spoofed_sources_are_always_dropped(
        level in arb_level(),
        forged in arb_mac(),
        dst in arb_mac(),
        dip in arb_ip(),
    ) {
        let spec = DeploymentSpec::mts(
            level,
            DatapathKind::Kernel,
            ResourceMode::Shared,
            Scenario::P2v,
        );
        let mut d = Controller::deploy(spec).expect("deploys");
        let t = d.plan.tenants[0].clone();
        let (vf, real_mac) = t.vf[0];
        prop_assume!(forged != real_mac);
        let frame = Frame::udp_data(forged, dst, t.ip, dip, 1, 2, 64);
        let out = d
            .nic
            .ingress(vf.pf, NicPort::Vf(vf.vf), frame)
            .expect("nic switches");
        prop_assert!(out.is_empty(), "spoofed frame delivered: {:?}", out);
    }

    /// Wire traffic can never inject directly into a tenant VF by guessing
    /// its MAC: tenant VFs live in tagged VLANs, wire traffic is untagged
    /// unless an 802.1Q tag is supplied — and tagged injection only works
    /// if the tag AND the MAC both match, which the vswitch path never
    /// generates for foreign tenants.
    #[test]
    fn untagged_wire_traffic_stays_out_of_tenant_vlans(
        src in arb_mac(),
        dip in arb_ip(),
    ) {
        let spec = DeploymentSpec::mts(
            SecurityLevel::Level2 { compartments: 2 },
            DatapathKind::Kernel,
            ResourceMode::Shared,
            Scenario::P2v,
        );
        let mut d = Controller::deploy(spec).expect("deploys");
        let t = d.plan.tenants[0].clone();
        let (vf, mac) = t.vf[0];
        // Untagged frame from the wire addressed straight to the tenant MAC.
        let frame = Frame::udp_data(src, mac, Ipv4Addr::new(9, 9, 9, 9), dip, 5, 6, 64);
        let out = d
            .nic
            .ingress(vf.pf, NicPort::Wire, frame)
            .expect("nic switches");
        for delivery in &out {
            prop_assert_ne!(delivery.port, NicPort::Vf(vf.vf), "direct injection");
        }
    }
}
