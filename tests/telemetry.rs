//! Telemetry integration: enabling the recorder never perturbs the
//! simulation, typed drop causes reconcile across all three views, and the
//! complete-mediation audit holds on every SR-IOV deployment level.

use mts::core::controller::Controller;
use mts::core::runtime::{start_udp_generator, RuntimeCfg, Sim, World};
use mts::core::spec::{DeploymentSpec, Scenario, SecurityLevel};
use mts::host::ResourceMode;
use mts::net::MacAddr;
use mts::sim::Time;
use mts::telemetry::{DropCause, MediationAuditor, Telemetry};
use mts::vswitch::DatapathKind;
use std::net::Ipv4Addr;

fn build(
    level: SecurityLevel,
    scenario: Scenario,
    telemetry: bool,
) -> (World, Sim, Vec<(MacAddr, Ipv4Addr)>) {
    let spec = DeploymentSpec::mts(
        level,
        DatapathKind::Kernel,
        ResourceMode::Isolated,
        scenario,
    );
    let d = Controller::deploy(spec).expect("deploys");
    let mut w = World::new(d, RuntimeCfg::for_spec(&spec), 7);
    w.sink.window = (Time::ZERO, Time::MAX);
    if telemetry {
        w.telemetry = Telemetry::enabled();
    }
    let flows = w
        .plan
        .tenants
        .iter()
        .map(|t| {
            let c = w.spec.compartment_of_tenant(t.index) as usize;
            (w.plan.compartments[c].in_out[0].1, t.ip)
        })
        .collect();
    (w, Sim::new(), flows)
}

fn run(w: &mut World, e: &mut Sim, flows: Vec<(MacAddr, Ipv4Addr)>) {
    start_udp_generator(e, flows, 80_000.0, 64, Time::from_nanos(5_000_000));
    e.run_until(w, Time::from_nanos(15_000_000));
}

/// The recorder is an observer: running with it enabled must leave every
/// simulation-visible result bit-identical to a run with it disabled.
#[test]
fn telemetry_on_is_bit_identical_to_off() {
    let level = SecurityLevel::Level2 { compartments: 2 };
    let (mut off, mut e_off, flows_off) = build(level, Scenario::V2v, false);
    let (mut on, mut e_on, flows_on) = build(level, Scenario::V2v, true);
    run(&mut off, &mut e_off, flows_off);
    run(&mut on, &mut e_on, flows_on);

    assert_eq!(off.sink.sent, on.sink.sent);
    assert_eq!(off.sink.received, on.sink.received);
    assert_eq!(off.sink.per_flow, on.sink.per_flow);
    assert_eq!(off.drops, on.drops);
    assert_eq!(off.sink.latency.count(), on.sink.latency.count());
    assert_eq!(
        off.sink.latency.mean().to_bits(),
        on.sink.latency.mean().to_bits()
    );
    assert_eq!(
        off.sink.latency.percentile(99.0),
        on.sink.latency.percentile(99.0)
    );
    // And the enabled run actually recorded something.
    let rec = on.telemetry.recorder().expect("enabled");
    assert!(!rec.journeys.is_empty());
    assert!(!rec.trace.is_empty());
    assert!(!rec.metrics.is_empty());
}

/// Drops reconcile across all three views: `World::total_drops()`, the
/// per-cause `World::drops` map, and the `mts_drops_total` counter family.
#[test]
fn drop_totals_match_per_cause_counters() {
    let level = SecurityLevel::Level2 { compartments: 2 };
    let (mut w, mut e, flows) = build(level, Scenario::P2v, true);
    // Hot-unplug tenant 0's VF mid-run so VfUnclaimed drops accumulate.
    e.schedule_at(Time::from_nanos(2_000_000), |w: &mut World, _e| {
        let (vf, _) = w.plan.tenants[0].vf[0];
        w.vf_owner.remove(&(vf.pf.0, vf.vf.0));
    });
    run(&mut w, &mut e, flows);

    assert!(w.drops.get(&DropCause::VfUnclaimed).copied().unwrap_or(0) > 0);
    let per_cause_sum: u64 = w.drops.values().sum();
    assert_eq!(w.total_drops(), per_cause_sum);

    let rec = w.telemetry.recorder().expect("enabled");
    assert_eq!(rec.metrics.counter_total("mts_drops_total"), per_cause_sum);
    for (cause, n) in &w.drops {
        assert_eq!(
            rec.metrics
                .counter_value("mts_drops_total", &[("cause", cause.as_str())]),
            *n,
            "counter for {cause} out of sync"
        );
    }
}

/// Complete mediation holds at every SR-IOV level: each delivered tenant
/// frame crossed the embedded switch and at least one vswitch.
#[test]
fn mediation_audit_passes_on_all_sriov_levels() {
    for (level, scenario) in [
        (SecurityLevel::Level1, Scenario::V2v),
        (SecurityLevel::Level2 { compartments: 2 }, Scenario::V2v),
        // Four compartments leave one tenant each, so pair-wise v2v does not
        // apply; p2v still crosses the VEB and every per-compartment vswitch.
        (SecurityLevel::Level2 { compartments: 4 }, Scenario::P2v),
    ] {
        let (mut w, mut e, flows) = build(level, scenario, true);
        run(&mut w, &mut e, flows);
        assert!(w.sink.received > 0, "{level:?} delivered nothing");
        let rec = w.telemetry.recorder().expect("enabled");
        let report = MediationAuditor::sriov().audit(&rec.journeys);
        assert!(report.checked > 0, "{level:?} audited no segments");
        assert!(report.ok(), "{level:?} violations: {:?}", report.violations);
    }
}
