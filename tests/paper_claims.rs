//! The paper's headline claims, checked at reduced measurement scale.
//!
//! These are the qualitative *shapes* of the evaluation (who wins, by what
//! factor, where saturation lands) — absolute fidelity is documented in
//! EXPERIMENTS.md from full-scale runs of the `repro` binary.

use mts::core::attacks::{self, Attack};
use mts::core::spec::{DeploymentSpec, Scenario, SecurityLevel};
use mts::core::testbed::{RunOpts, Testbed};
use mts::core::vfplan::VfBudget;
use mts::host::{ResourceLedger, ResourceMode};
use mts::sim::Dur;
use mts::vswitch::DatapathKind;

/// Saturating-but-affordable options for debug-mode test runs.
fn saturating() -> RunOpts {
    RunOpts {
        rate_pps: 2_000_000.0,
        wire_len: 64,
        warmup: Dur::millis(14),
        measure: Dur::millis(8),
        seed: 3,
    }
}

fn mpps(spec: DeploymentSpec, opts: RunOpts) -> f64 {
    Testbed::new(spec).run(opts).expect("run completes").mpps()
}

#[test]
fn shared_mode_p2v_mts_is_1_5x_to_2x_baseline() {
    // Sec. 4.1: "a 2x increase in throughput (nearly .4 Mpps ...) compared
    // to the Baseline (nearly .2 Mpps)".
    let base = mpps(
        DeploymentSpec::baseline(DatapathKind::Kernel, ResourceMode::Shared, 1, Scenario::P2v),
        saturating(),
    );
    let l24 = mpps(
        DeploymentSpec::mts(
            SecurityLevel::Level2 { compartments: 4 },
            DatapathKind::Kernel,
            ResourceMode::Shared,
            Scenario::P2v,
        ),
        saturating(),
    );
    let ratio = l24 / base;
    assert!((0.15..=0.3).contains(&base), "baseline {base} Mpps");
    assert!(
        (1.4..=3.0).contains(&ratio),
        "MTS/Baseline p2v ratio {ratio} (MTS {l24})"
    );
}

#[test]
fn v2v_mts_doubles_baseline_too() {
    let base = mpps(
        DeploymentSpec::baseline(DatapathKind::Kernel, ResourceMode::Shared, 1, Scenario::V2v),
        saturating(),
    );
    let l1 = mpps(
        DeploymentSpec::mts(
            SecurityLevel::Level1,
            DatapathKind::Kernel,
            ResourceMode::Shared,
            Scenario::V2v,
        ),
        saturating(),
    );
    assert!(l1 / base > 1.5, "v2v ratio {} ({l1} vs {base})", l1 / base);
}

#[test]
fn isolated_baseline_p2p_scales_with_cores() {
    // Sec. 4.1: "the aggregate throughput increases roughly from 1 Mpps to
    // 2 Mpps to 4 Mpps as the number of cores increase" — checked at a
    // reduced offered rate, so we verify 1->2 core scaling only.
    let one = mpps(
        DeploymentSpec::baseline(
            DatapathKind::Kernel,
            ResourceMode::Isolated,
            1,
            Scenario::P2p,
        ),
        saturating(),
    );
    let two = mpps(
        DeploymentSpec::baseline(
            DatapathKind::Kernel,
            ResourceMode::Isolated,
            2,
            Scenario::P2p,
        ),
        saturating(),
    );
    assert!((0.6..=1.2).contains(&one), "1 core: {one} Mpps");
    assert!(two / one > 1.6, "2-core scaling: {one} -> {two}");
}

#[test]
fn dpdk_mts_p2v_saturates_near_2_3_mpps() {
    // Sec. 4.1: "the throughput saturates (at around 2.3 Mpps)".
    let opts = RunOpts {
        rate_pps: 6_000_000.0,
        ..saturating()
    };
    let l1 = mpps(
        DeploymentSpec::mts(
            SecurityLevel::Level1,
            DatapathKind::Dpdk,
            ResourceMode::Isolated,
            Scenario::P2v,
        ),
        opts,
    );
    assert!((1.9..=2.6).contains(&l1), "MTS dpdk p2v {l1} Mpps");
}

#[test]
fn mts_p2v_latency_beats_baseline_kernel() {
    // Sec. 4.2: "the p2v and v2v scenarios show that MTS is slightly
    // faster than the Baseline".
    let lat = |spec| {
        Testbed::new(spec)
            .run(RunOpts {
                rate_pps: 10_000.0,
                wire_len: 64,
                warmup: Dur::millis(5),
                measure: Dur::millis(40),
                seed: 5,
            })
            .expect("run completes")
            .latency
            .p50
    };
    let base = lat(DeploymentSpec::baseline(
        DatapathKind::Kernel,
        ResourceMode::Isolated,
        1,
        Scenario::P2v,
    ));
    let l1 = lat(DeploymentSpec::mts(
        SecurityLevel::Level1,
        DatapathKind::Kernel,
        ResourceMode::Isolated,
        Scenario::P2v,
    ));
    assert!(l1 < base, "MTS p2v latency {l1} !< baseline {base}");
    // But p2p pays the extra NIC round trip.
    let base_p2p = lat(DeploymentSpec::baseline(
        DatapathKind::Kernel,
        ResourceMode::Isolated,
        1,
        Scenario::P2p,
    ));
    let l1_p2p = lat(DeploymentSpec::mts(
        SecurityLevel::Level1,
        DatapathKind::Kernel,
        ResourceMode::Isolated,
        Scenario::P2p,
    ));
    assert!(
        l1_p2p > base_p2p,
        "MTS p2p must pay the NIC round trip: {l1_p2p} !> {base_p2p}"
    );
}

#[test]
fn resource_accounting_matches_sec_4_3() {
    // Baseline shared = 1 core; MTS shared = 2 cores; isolated = one extra
    // core over the Baseline; DPDK = equal cores.
    let totals = |compartments, colocated, mode, dpdk| {
        ResourceLedger {
            compartments,
            colocated,
            mode,
            dpdk,
        }
        .totals()
    };
    assert_eq!(totals(1, true, ResourceMode::Shared, false).cores, 1);
    for k in [1, 2, 4] {
        assert_eq!(totals(k, false, ResourceMode::Shared, false).cores, 2);
        assert_eq!(
            totals(k, false, ResourceMode::Isolated, false).cores,
            totals(k, true, ResourceMode::Isolated, false).cores + 1
        );
        assert_eq!(
            totals(k, false, ResourceMode::Isolated, true).cores,
            totals(k, true, ResourceMode::Isolated, true).cores
        );
    }
}

#[test]
fn vf_budget_matches_sec_3_2() {
    assert_eq!(VfBudget::for_level(SecurityLevel::Level1, 1, 1).total(), 3);
    assert_eq!(VfBudget::for_level(SecurityLevel::Level1, 4, 1).total(), 9);
    assert_eq!(
        VfBudget::for_level(SecurityLevel::Level2 { compartments: 2 }, 2, 1).total(),
        6
    );
    assert_eq!(
        VfBudget::for_level(SecurityLevel::Level2 { compartments: 4 }, 4, 1).total(),
        12
    );
}

#[test]
fn security_ladder_is_monotone() {
    let ladder = attacks::evaluate_ladder().expect("ladder evaluates");
    let counts: Vec<usize> = ladder.iter().map(|r| r.blocked_count()).collect();
    for w in counts.windows(2) {
        assert!(w[1] >= w[0], "blocked counts regress: {counts:?}");
    }
    // Level-1's headline claim: the host survives a compromised vswitch.
    let l1 = &ladder[1];
    assert!(
        l1.outcome(Attack::DirectHostAccess)
            .expect("attack evaluated")
            .blocked
    );
    // Level-2's headline claim: tenants survive each other's vswitches.
    let l2 = &ladder[2];
    assert!(
        l2.outcome(Attack::CompromisedVswitch)
            .expect("attack evaluated")
            .blocked
    );
}
