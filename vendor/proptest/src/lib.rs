//! Offline stand-in for `proptest`.
//!
//! Supports the subset of the proptest 1.x API this workspace's property
//! tests use: the `proptest!` macro (with optional `proptest_config`),
//! `prop_assert*`/`prop_assume!`, `any::<T>()`, range strategies,
//! `prop_oneof!`, `Just`, `.prop_map`, `proptest::collection::vec` and
//! `proptest::option::of`.
//!
//! Differences from the real crate, by design:
//! - sampling is deterministic per test (seeded from the test name), so
//!   failures always reproduce;
//! - no shrinking — a failing case panics with the sampled inputs intact;
//! - no persistence files (`.proptest-regressions` files are ignored).

pub mod test_runner {
    //! Configuration and the per-test deterministic RNG.

    /// Mirror of proptest's config: only `cases` is honoured.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real default (256) is tuned for millisecond-scale cases;
            // several tests here deploy a full simulated testbed per case,
            // so the stub defaults lower.
            ProptestConfig { cases: 64 }
        }
    }

    /// Outcome of one generated case.
    pub enum StubOutcome {
        /// The case ran to completion.
        Pass,
        /// `prop_assume!` rejected the inputs; resample.
        Reject,
    }

    /// Deterministic SplitMix64 generator used for sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name (stable across runs).
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; 0 when `bound` is 0.
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                0
            } else {
                self.next_u64() % bound
            }
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and combinators.

    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values for property tests.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a strategy
    /// just samples.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (for heterogeneous `prop_oneof!` arms).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A boxed, type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample(rng)
        }
    }

    /// `prop_map` combinator.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed strategies (the `prop_oneof!` backend).
    pub struct OneOf<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        /// Builds from a non-empty list of arms.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        rng.next_u64() as $t
                    } else {
                        lo + rng.below(span) as $t
                    }
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + rng.unit() * (self.end - self.start);
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit()
        }
    }

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut TestRng) -> Self {
            let mut out = [0u8; N];
            for b in out.iter_mut() {
                *b = rng.next_u64() as u8;
            }
            out
        }
    }

    /// Strategy over the whole domain of `A`.
    pub struct ArbStrategy<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for ArbStrategy<A> {
        type Value = A;
        fn sample(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// Returns the canonical strategy for `A` (mirror of `proptest::arbitrary::any`).
    pub fn any<A: Arbitrary>() -> ArbStrategy<A> {
        ArbStrategy(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds for a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vectors of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy yielding `None` for one draw in five.
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(5) == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }

    /// Wraps a strategy's values in `Some`, sometimes yielding `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...)` block runs
/// `cases` times over freshly sampled inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_body! { cfg = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_body! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( cfg = $cfg:expr; ) => {};
    (
        cfg = $cfg:expr;
        $(#[$attr:meta])*
        fn $name:ident( $($p:pat in $s:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut __accepted: u32 = 0;
            let mut __attempts: u32 = 0;
            let __max_attempts = __cfg.cases.saturating_mul(16).max(16);
            while __accepted < __cfg.cases && __attempts < __max_attempts {
                __attempts += 1;
                $(let $p = $crate::strategy::Strategy::sample(&($s), &mut __rng);)+
                #[allow(clippy::redundant_closure_call)]
                let __outcome = (move || -> $crate::test_runner::StubOutcome {
                    { $body }
                    $crate::test_runner::StubOutcome::Pass
                })();
                if let $crate::test_runner::StubOutcome::Pass = __outcome {
                    __accepted += 1;
                }
            }
            assert!(
                __accepted > 0,
                "prop_assume! rejected every generated case"
            );
        }
        $crate::__proptest_body! { cfg = $cfg; $($rest)* }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {
        assert_eq!($lhs, $rhs);
    };
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {
        assert_eq!($lhs, $rhs, $($fmt)+);
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {
        assert_ne!($lhs, $rhs);
    };
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {
        assert_ne!($lhs, $rhs, $($fmt)+);
    };
}

/// Uniform choice among the given strategy arms (all arms must share a
/// value type; arms are boxed, so heterogeneous strategy types are fine).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Rejects the current case (resampling it) when the condition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return $crate::test_runner::StubOutcome::Reject;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_collections(
            mut v in crate::collection::vec(1u64..100, 2..10),
            x in 5u32..=7,
            f in 0.25f64..0.75,
            o in crate::option::of(1u8..4),
            b in any::<bool>(),
            arr in any::<[u8; 6]>(),
        ) {
            v.sort_unstable();
            prop_assert!(v.len() >= 2 && v.len() < 10);
            prop_assert!(v.iter().all(|&e| (1..100).contains(&e)));
            prop_assert!((5..=7).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
            if let Some(i) = o {
                prop_assert!((1..4).contains(&i));
            }
            let _ = b;
            prop_assert_eq!(arr.len(), 6);
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            Just(1u32),
            (10u32..20).prop_map(|x| x * 2),
        ]) {
            prop_assert!(v == 1 || (20..40).contains(&v));
        }

        #[test]
        fn assume_rejects(x in 0u8..10) {
            prop_assume!(x < 5);
            prop_assert!(x < 5);
        }
    }

    #[test]
    fn deterministic_rng_is_stable() {
        let mut a = crate::test_runner::TestRng::deterministic("seed");
        let mut b = crate::test_runner::TestRng::deterministic("seed");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
