//! No-op `#[derive(Serialize, Deserialize)]` macros.
//!
//! The workspace only uses serde derives as markers (nothing in the tree
//! serializes through serde — exporters emit their wire formats by hand),
//! so the offline stand-in can expand to nothing. `attributes(serde)`
//! keeps `#[serde(...)]` field attributes legal should they ever appear.

use proc_macro::TokenStream;

/// Accepts the input and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts the input and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
