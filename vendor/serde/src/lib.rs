//! Offline stand-in for `serde`.
//!
//! The build environment has no network access and an empty crates.io
//! cache, so the real serde cannot be fetched. Nothing in this workspace
//! actually serializes through serde (the derives are forward-looking
//! markers; all exporters hand-roll their formats), which lets this stub
//! get away with empty traits and derives that expand to nothing.
//!
//! Replace with the real crate by deleting the `vendor/` path entries in
//! the workspace `Cargo.toml` once a registry is reachable.

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that would be serializable with the real serde.
pub trait Serialize {}

/// Marker for types that would be deserializable with the real serde.
pub trait Deserialize<'de>: Sized {}
