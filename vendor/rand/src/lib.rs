//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Implements exactly the surface `mts_sim::DetRng` consumes —
//! `StdRng::seed_from_u64`, `gen`, `gen_range`, `fill` — on top of
//! xoshiro256++ seeded through SplitMix64. The stream differs from the
//! real `StdRng` (which is ChaCha-based), but every consumer in this
//! workspace only requires determinism and reasonable uniformity, both of
//! which xoshiro256++ provides.

use std::ops::{Range, RangeInclusive};

/// The core source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution in real rand).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a value of type `T` can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    rng.next_u64() as $t
                } else {
                    lo + (rng.next_u64() % span) as $t
                }
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = f64::sample(rng);
        let v = self.start + unit * (self.end - self.start);
        // Guard against rounding up to the exclusive bound.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Convenience sampling methods, as in rand 0.8.
pub trait Rng: RngCore {
    /// Draws a value of `T` uniformly over its domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for rand's StdRng).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_hold() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(r.gen_range(5u64..10) < 10);
            assert!(r.gen_range(5u64..10) >= 5);
            let v = r.gen_range(3u64..=3);
            assert_eq!(v, 3);
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn fill_covers_partial_chunks() {
        let mut r = StdRng::seed_from_u64(2);
        let mut buf = [0u8; 13];
        r.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
