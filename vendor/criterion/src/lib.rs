//! Offline stand-in for `criterion` (0.5 API subset).
//!
//! Implements the surface the workspace benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::{iter, iter_batched}`,
//! `BatchSize`, and the `criterion_group!`/`criterion_main!` macros.
//! Instead of criterion's full statistical pipeline it reports the mean
//! wall-clock time per iteration over a fixed measurement window, which
//! is enough for the A/B comparisons the benches are used for here.

use std::time::{Duration, Instant};

/// How batched inputs are sized (accepted for API compatibility; the stub
/// times every batch individually regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Measurement settings shared by a `Criterion` and its groups.
#[derive(Debug, Clone, Copy)]
struct Settings {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            warm_up: Duration::from_millis(100),
            measurement: Duration::from_millis(400),
            sample_size: 20,
        }
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            settings: self.settings,
            _parent: self,
        }
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&name.to_string(), self.settings, f);
        self
    }
}

/// A named group of benchmarks with shared settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the target sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up = d;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement = d;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, name), self.settings, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to benchmark closures; times the actual routine.
pub struct Bencher {
    settings: Settings,
    /// (total busy time, iterations) accumulated by `iter*` calls.
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up.
        let warm_until = Instant::now() + self.settings.warm_up;
        while Instant::now() < warm_until {
            std::hint::black_box(routine());
        }
        let measure_until = Instant::now() + self.settings.measurement;
        let mut iters = 0u64;
        let started = Instant::now();
        loop {
            std::hint::black_box(routine());
            iters += 1;
            if Instant::now() >= measure_until {
                break;
            }
        }
        self.total += started.elapsed();
        self.iters += iters;
    }

    /// Times `routine` over inputs produced by `setup` (setup time excluded).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_until = Instant::now() + self.settings.warm_up;
        while Instant::now() < warm_until {
            let input = setup();
            std::hint::black_box(routine(input));
        }
        let measure_until = Instant::now() + self.settings.measurement;
        let mut busy = Duration::ZERO;
        let mut iters = 0u64;
        loop {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            busy += t0.elapsed();
            iters += 1;
            if Instant::now() >= measure_until {
                break;
            }
        }
        self.total += busy;
        self.iters += iters;
    }
}

fn run_bench<F>(name: &str, settings: Settings, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        settings,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("{name:<40} (no iterations)");
        return;
    }
    let per_iter = b.total.as_nanos() as f64 / b.iters as f64;
    println!("{name:<40} {:>12} time: {}", b.iters, format_ns(per_iter));
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s/iter", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us/iter", ns / 1e3)
    } else {
        format!("{ns:.1} ns/iter")
    }
}

/// Declares a function running the listed benchmarks in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_accumulates() {
        let mut c = Criterion::default();
        c.settings.warm_up = Duration::from_millis(1);
        c.settings.measurement = Duration::from_millis(5);
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        let mut count = 0u64;
        group.bench_function("count", |b| b.iter(|| count += 1));
        group.bench_function("batched", |b| {
            b.iter_batched(|| 21u64, |x| x * 2, BatchSize::SmallInput)
        });
        group.finish();
        assert!(count > 0);
    }
}
